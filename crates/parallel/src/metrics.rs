//! Workload runners, per-query traces, and the speed-up / scale-up
//! metrics of the paper.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use parsim_geometry::Point;
use parsim_index::SearchStats;
use parsim_storage::{DiskModel, QueryCost};

use crate::declustered::DeclusteredXTree;
use crate::engine::ParallelKnnEngine;
use crate::sequential::SequentialEngine;
use crate::EngineError;

/// What degraded-mode execution did for one query: which disks were lost
/// (failed, flaky beyond retry, or over the timeout budget), how much
/// retrying happened, and what the detour through the replicas cost.
///
/// `None` on the trace of a query that ran the healthy fast path.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DegradedInfo {
    /// Disks whose buckets were served from replicas on other disks.
    pub failed_over: Vec<usize>,
    /// Total page-read retries performed against flaky disks.
    pub retries: u64,
    /// Pages read from replica (mirror) trees instead of primaries.
    pub replica_pages: u64,
    /// Modeled parallel time added by the degradation: the degraded
    /// critical path (slow-disk multipliers, retry backoff, replica
    /// detours, timeout waits) minus the healthy service time of the same
    /// page counts.
    pub added_latency: Duration,
}

/// The observability record of one traced query.
///
/// Produced by [`ParallelKnnEngine::query`],
/// [`ParallelKnnEngine::knn_traced`] and
/// [`ParallelKnnEngine::knn_batch`]; serializable to JSON with
/// [`serde::Serialize::to_json`] for offline analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTrace {
    /// Pages requested from each disk by this query, counted locally in
    /// the search threads — exact for this query even while other queries
    /// run against the same disks concurrently.
    pub per_disk_pages: Vec<u64>,
    /// Subtrees discarded by the pruning bound without being read.
    pub candidates_pruned: u64,
    /// Page requests absorbed by the per-disk caches during this query
    /// (always 0 for an uncached engine). Counted in the search threads
    /// themselves, so the figure is exact for this query even when other
    /// cached queries run against the same disks concurrently.
    pub cache_hits: u64,
    /// Per-disk node visits that rode a physical read another query of
    /// the same submission wave already performed (always all-zero
    /// without [`crate::AdmissionConfig::coalescing`]). Which query of a
    /// wave charges a shared page and which ones coalesce is
    /// execution-order dependent, but the wave's **sum** is not: for a
    /// page requested by `m` queries, exactly `m − 1` visits coalesce.
    /// Logical `per_disk_pages` are unaffected either way.
    pub per_disk_coalesced: Vec<u64>,
    /// f64 point-distance evaluations started in leaf scans. On the cheap
    /// scan tiers only phase-1 survivors start one, so this counter is the
    /// query's f64 kernel cost on every tier.
    pub dist_evals: u64,
    /// Candidate points whose full f64 distance was never computed: cut
    /// short by the early-abandon kernel (f64 tier) or filtered by a
    /// certified low-precision lower bound (cheap tiers).
    pub dist_evals_saved: u64,
    /// Phase-1 lower-bound kernel evaluations (f32 or q8 rows scanned).
    /// Zero on [`parsim_index::ScanTier::F64`].
    pub lb_evals: u64,
    /// Phase-1 survivors re-ranked by the exact f64 batch kernel (each
    /// also counts into [`QueryTrace::dist_evals`]). Zero on
    /// [`parsim_index::ScanTier::F64`].
    pub rerank_evals: u64,
    /// Rows a bounded distance kernel abandoned mid-scan, on any tier
    /// (a subset of [`QueryTrace::dist_evals_saved`]; lower-bound filters
    /// that never start a kernel do not count here).
    pub abandoned_rows: u64,
    /// 4-coordinate checkpoints those abandoned rows executed before the
    /// partial sum crossed the bound. The mean abandon depth in
    /// coordinates is `4 × abandon_checkpoints / abandoned_rows` — the
    /// figure the energy scan order ([`parsim_index::ScanOrder`]) is
    /// designed to shrink.
    pub abandon_checkpoints: u64,
    /// LSH buckets probed over all tables and disks. Zero on every
    /// [`crate::QueryMode::Exact`] query.
    #[serde(default)]
    pub lsh_probes: u64,
    /// Unique LSH candidate rows whose exact f64 distance was computed
    /// (each also counts into [`QueryTrace::dist_evals`]). Zero in exact
    /// mode.
    #[serde(default)]
    pub lsh_candidates: u64,
    /// Probed LSH buckets that held no rows — the recall proxy: an
    /// empty-probe share near 1 means the probe budget found nothing and
    /// recall is likely suffering. Zero in exact mode.
    #[serde(default)]
    pub lsh_empty_probes: u64,
    /// Measured wall-clock time of the query on the host.
    pub wall_time: Duration,
    /// Modeled parallel service time: all disks read concurrently, the
    /// busiest one gates.
    pub modeled_parallel: Duration,
    /// Modeled sequential service time: the same pages served by one disk.
    pub modeled_sequential: Duration,
    /// Degraded-mode record: `Some` iff the query ran with failure
    /// handling engaged (injected faults or a timeout budget) — see
    /// [`DegradedInfo`].
    pub degraded: Option<DegradedInfo>,
}

impl QueryTrace {
    /// Assembles a trace from per-tree search counters.
    pub fn from_stats(stats: &[SearchStats], wall_time: Duration, model: &DiskModel) -> QueryTrace {
        let per_disk_pages: Vec<u64> = stats.iter().map(|s| s.pages).collect();
        let max = per_disk_pages.iter().copied().max().unwrap_or(0);
        let total: u64 = per_disk_pages.iter().copied().sum();
        QueryTrace {
            per_disk_pages,
            candidates_pruned: stats.iter().map(|s| s.pruned).sum(),
            cache_hits: stats.iter().map(|s| s.cache_hits).sum(),
            per_disk_coalesced: stats.iter().map(|s| s.coalesced).collect(),
            dist_evals: stats.iter().map(|s| s.dist_evals).sum(),
            dist_evals_saved: stats.iter().map(|s| s.dist_evals_saved).sum(),
            lb_evals: stats.iter().map(|s| s.lb_evals).sum(),
            rerank_evals: stats.iter().map(|s| s.rerank_evals).sum(),
            abandoned_rows: stats.iter().map(|s| s.abandoned_rows).sum(),
            abandon_checkpoints: stats.iter().map(|s| s.abandon_checkpoints).sum(),
            lsh_probes: 0,
            lsh_candidates: 0,
            lsh_empty_probes: 0,
            wall_time,
            modeled_parallel: model.service_time(max),
            modeled_sequential: model.service_time(total),
            degraded: None,
        }
    }

    /// Pages requested from the busiest disk.
    pub fn max_pages(&self) -> u64 {
        self.per_disk_pages.iter().copied().max().unwrap_or(0)
    }

    /// Pages requested across all disks.
    pub fn total_pages(&self) -> u64 {
        self.per_disk_pages.iter().copied().sum()
    }

    /// Visits coalesced onto another query's physical read, across all
    /// disks (see [`QueryTrace::per_disk_coalesced`]).
    pub fn coalesced_reads(&self) -> u64 {
        self.per_disk_coalesced.iter().copied().sum()
    }

    /// The modeled speed-up of this query: sequential over parallel
    /// service time (1.0 for an empty query).
    pub fn modeled_speedup(&self) -> f64 {
        let p = self.modeled_parallel.as_secs_f64();
        if p == 0.0 {
            1.0
        } else {
            self.modeled_sequential.as_secs_f64() / p
        }
    }

    /// Converts the trace into the classic [`QueryCost`] record.
    pub fn cost(&self, model: &DiskModel) -> QueryCost {
        QueryCost::from_reads(self.per_disk_pages.clone(), model)
    }
}

/// Aggregate cost of a query workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadCost {
    /// Number of queries executed.
    pub queries: usize,
    /// Average pages read by the most-loaded disk per query.
    pub avg_max_reads: f64,
    /// Average total pages read per query.
    pub avg_total_reads: f64,
    /// Average modeled parallel search time per query, in milliseconds.
    pub avg_parallel_ms: f64,
    /// Average modeled sequential search time per query, in milliseconds
    /// (the same page accesses issued to one disk).
    pub avg_sequential_ms: f64,
    /// Sum of per-disk reads over the whole workload.
    pub per_disk_reads: Vec<u64>,
}

impl WorkloadCost {
    fn from_costs(costs: &[QueryCost]) -> WorkloadCost {
        assert!(!costs.is_empty(), "workload must contain queries");
        let n = costs.len() as f64;
        let mut per_disk = vec![0u64; costs[0].per_disk_reads.len()];
        for c in costs {
            for (acc, r) in per_disk.iter_mut().zip(&c.per_disk_reads) {
                *acc += r;
            }
        }
        WorkloadCost {
            queries: costs.len(),
            avg_max_reads: costs.iter().map(|c| c.max_reads as f64).sum::<f64>() / n,
            avg_total_reads: costs.iter().map(|c| c.total_reads as f64).sum::<f64>() / n,
            avg_parallel_ms: costs
                .iter()
                .map(|c| c.parallel_time.as_secs_f64() * 1e3)
                .sum::<f64>()
                / n,
            avg_sequential_ms: costs
                .iter()
                .map(|c| c.sequential_time.as_secs_f64() * 1e3)
                .sum::<f64>()
                / n,
            per_disk_reads: per_disk,
        }
    }

    /// Aggregates a batch of per-query traces into a workload cost, so
    /// trace-based runs ([`ParallelKnnEngine::knn_batch`]) report the same
    /// figures as the scope-based runners.
    pub fn from_traces(traces: &[QueryTrace], model: &DiskModel) -> WorkloadCost {
        let costs: Vec<QueryCost> = traces.iter().map(|t| t.cost(model)).collect();
        WorkloadCost::from_costs(&costs)
    }

    /// Average intra-query speed-up (`total / max` page reads).
    pub fn internal_speedup(&self) -> f64 {
        if self.avg_max_reads == 0.0 {
            1.0
        } else {
            self.avg_total_reads / self.avg_max_reads
        }
    }
}

/// Runs a k-NN workload against a parallel engine and aggregates the cost.
pub fn run_knn_workload(
    engine: &ParallelKnnEngine,
    queries: &[Point],
    k: usize,
) -> Result<WorkloadCost, EngineError> {
    let mut costs = Vec::with_capacity(queries.len());
    for q in queries {
        let (_, cost) = engine.knn(q, k)?;
        costs.push(cost);
    }
    Ok(WorkloadCost::from_costs(&costs))
}

/// Runs a k-NN workload through the traced per-disk-threaded path and
/// returns the aggregate cost together with the raw per-query traces.
pub fn run_traced_workload(
    engine: &ParallelKnnEngine,
    queries: &[Point],
    k: usize,
) -> Result<(WorkloadCost, Vec<QueryTrace>), EngineError> {
    let mut traces = Vec::with_capacity(queries.len());
    for q in queries {
        let (_, t) = engine.knn_traced(q, k)?;
        traces.push(t);
    }
    Ok((
        WorkloadCost::from_traces(&traces, engine.array().model()),
        traces,
    ))
}

/// Runs a k-NN workload against a page-declustered global tree.
pub fn run_declustered_workload(
    engine: &DeclusteredXTree,
    queries: &[Point],
    k: usize,
) -> Result<WorkloadCost, EngineError> {
    let mut costs = Vec::with_capacity(queries.len());
    for q in queries {
        let (_, cost) = engine.knn(q, k)?;
        costs.push(cost);
    }
    Ok(WorkloadCost::from_costs(&costs))
}

/// Runs a k-NN workload against the sequential baseline.
pub fn run_sequential_workload(
    engine: &SequentialEngine,
    queries: &[Point],
    k: usize,
) -> Result<WorkloadCost, EngineError> {
    let mut costs = Vec::with_capacity(queries.len());
    for q in queries {
        let (_, cost) = engine.knn(q, k)?;
        costs.push(cost);
    }
    Ok(WorkloadCost::from_costs(&costs))
}

/// The paper's **speed-up** metric: sequential search time of the
/// single-disk X-tree divided by the parallel search time (service time of
/// the most-loaded disk).
pub fn speedup(sequential: &WorkloadCost, parallel: &WorkloadCost) -> f64 {
    if parallel.avg_parallel_ms == 0.0 {
        return 1.0;
    }
    sequential.avg_parallel_ms / parallel.avg_parallel_ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use parsim_datagen::{DataGenerator, UniformGenerator};

    #[test]
    fn workload_aggregation() {
        let pts = UniformGenerator::new(6).generate(3000, 1);
        let queries = UniformGenerator::new(6).generate(10, 2);
        let config = EngineConfig::paper_defaults(6);
        let par = ParallelKnnEngine::builder(6).disks(8).build(&pts).unwrap();
        let seq = SequentialEngine::build(&pts, config).unwrap();

        let pc = run_knn_workload(&par, &queries, 10).unwrap();
        let sc = run_sequential_workload(&seq, &queries, 10).unwrap();
        assert_eq!(pc.queries, 10);
        assert!(pc.avg_max_reads > 0.0);
        assert!(pc.avg_max_reads <= pc.avg_total_reads);
        assert!(pc.internal_speedup() > 1.0);
        // Parallel must beat the sequential baseline.
        let s = speedup(&sc, &pc);
        assert!(s > 1.5, "speed-up {s}");
        // And the sequential engine's max == total (one disk).
        assert_eq!(sc.avg_max_reads, sc.avg_total_reads);
    }
}
