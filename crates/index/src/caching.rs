//! A page-cache layer for visit accounting.
//!
//! Wraps any [`NodeSink`] with a sharded exact-per-shard-LRU page cache:
//! hits are absorbed (no disk charge), misses pass through. This lets
//! experiments answer "how much RAM per disk does it take to change the
//! figures?" — the paper's machines cached at least the small X-tree
//! directory, and the cache-size ablation bench quantifies how much
//! further caching matters.
//!
//! The cache is a [`ShardedLru`]: page ids are routed to independently
//! locked LRU shards, so concurrent searches of the same tree (the batched
//! query paths run many queries against every disk at once) never
//! serialize on a single global cache mutex. With one shard the sink is
//! exactly the old `Mutex<LruTracker>` behavior.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parsim_storage::{CacheMetrics, ShardedLru};

use crate::node::{Node, NodeId};
use crate::tree::{NodeSink, VisitOutcome};

/// Default shard count of [`CachingSink::new`] — enough to keep a handful
/// of concurrent same-disk searches from colliding while each shard stays
/// large enough for meaningful LRU behavior.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// A sharded LRU cache in front of another sink.
pub struct CachingSink {
    inner: Arc<dyn NodeSink>,
    cache: ShardedLru,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CachingSink {
    /// Wraps `inner` with a cache of `capacity` pages split over
    /// [`DEFAULT_CACHE_SHARDS`] independently locked shards.
    pub fn new(inner: Arc<dyn NodeSink>, capacity: usize) -> Self {
        Self::with_shards(inner, capacity, DEFAULT_CACHE_SHARDS)
    }

    /// Wraps `inner` with a cache of `capacity` pages split over `shards`
    /// independently locked LRU shards (clamped to at least 1; 1 shard is
    /// exact global LRU).
    pub fn with_shards(inner: Arc<dyn NodeSink>, capacity: usize, shards: usize) -> Self {
        Self::with_metrics(inner, capacity, shards, None)
    }

    /// Like [`CachingSink::with_shards`], but every cache access also
    /// bumps the matching per-shard counter in `metrics` (hits, misses,
    /// evictions). `None` is exactly [`CachingSink::with_shards`].
    pub fn with_metrics(
        inner: Arc<dyn NodeSink>,
        capacity: usize,
        shards: usize,
        metrics: Option<CacheMetrics>,
    ) -> Self {
        CachingSink {
            inner,
            cache: ShardedLru::with_metrics(capacity, shards, metrics),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of independently locked cache shards.
    pub fn shard_count(&self) -> usize {
        self.cache.shard_count()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (these reached the inner sink).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit rate in `[0,1]`; 0 before any access.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Empties the cache (keeps the counters).
    pub fn clear(&self) {
        self.cache.clear();
    }
}

impl NodeSink for CachingSink {
    fn visit(&self, id: NodeId, node: &Node) -> VisitOutcome {
        let hit = self.cache.touch(id.0 as u64);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            VisitOutcome::CacheHit
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.inner.visit(id, node)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnAlgorithm;
    use crate::params::{TreeParams, TreeVariant};
    use crate::tree::{DiskSink, SpatialTree};
    use parsim_datagen::{DataGenerator, UniformGenerator};
    use parsim_geometry::Point;
    use parsim_storage::SimDisk;

    fn build_cached(capacity: usize) -> (SpatialTree, Arc<CachingSink>, Arc<SimDisk>) {
        let dim = 6;
        let items: Vec<(Point, u64)> = UniformGenerator::new(dim)
            .generate(3_000, 1)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let disk = Arc::new(SimDisk::new(0));
        let sink = Arc::new(CachingSink::new(
            Arc::new(DiskSink(Arc::clone(&disk))),
            capacity,
        ));
        let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
        let tree = SpatialTree::bulk_load(params, items)
            .unwrap()
            .with_sink(Arc::clone(&sink) as Arc<dyn crate::tree::NodeSink>);
        (tree, sink, disk)
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let (tree, sink, disk) = build_cached(100_000); // effectively infinite
        let q = Point::new(vec![0.5; 6]).unwrap();
        tree.knn(&q, 10, KnnAlgorithm::Hs);
        let cold = disk.read_count();
        assert!(cold > 0);
        tree.knn(&q, 10, KnnAlgorithm::Hs);
        // The second identical query is fully cached.
        assert_eq!(disk.read_count(), cold);
        assert!(sink.hit_rate() > 0.0);
    }

    #[test]
    fn zero_cache_charges_everything() {
        let (tree, sink, disk) = build_cached(0);
        let q = Point::new(vec![0.2; 6]).unwrap();
        tree.knn(&q, 10, KnnAlgorithm::Hs);
        tree.knn(&q, 10, KnnAlgorithm::Hs);
        assert_eq!(sink.hits(), 0);
        assert_eq!(sink.misses(), disk.read_count());
    }

    #[test]
    fn bigger_caches_charge_less() {
        let mut charged = Vec::new();
        for capacity in [0usize, 8, 64, 100_000] {
            let (tree, _, disk) = build_cached(capacity);
            for q in UniformGenerator::new(6).generate(20, 9) {
                tree.knn(&q, 10, KnnAlgorithm::Hs);
            }
            charged.push(disk.read_count());
        }
        assert!(
            charged.windows(2).all(|w| w[1] <= w[0]),
            "charges not monotone: {charged:?}"
        );
        assert!(charged[3] < charged[0]);
    }

    #[test]
    fn clear_forgets_pages() {
        let (tree, sink, disk) = build_cached(100_000);
        let q = Point::new(vec![0.8; 6]).unwrap();
        tree.knn(&q, 5, KnnAlgorithm::Hs);
        let cold = disk.read_count();
        sink.clear();
        tree.knn(&q, 5, KnnAlgorithm::Hs);
        assert_eq!(disk.read_count(), 2 * cold);
    }
}
