//! The bucket-adaptive k-d-tree of Friedman, Bentley and Finkel \[FBF 77\].
//!
//! Section 2 of the paper reviews this as the practical partitioning
//! algorithm for nearest-neighbor search: the data space is split
//! recursively at the median of the spread-maximizing coordinate until
//! buckets of at most `b` points remain; the search descends to the
//! query's bucket and backtracks, visiting a sibling subtree only if the
//! current ball overlaps its region (the *bounds-overlap-ball* test) and
//! terminating when the ball lies within the region
//! (*ball-within-bounds*).
//!
//! The implementation counts visited buckets (one page each, charged to an
//! optional [`SimDisk`]); the `ext5` experiment uses it to reproduce the
//! paper's point that *all* partitioning structures degenerate in high
//! dimensions, which is what motivates parallelism.

use std::sync::Arc;

use parsim_geometry::Point;
use parsim_storage::SimDisk;

use crate::knn::Neighbor;

/// A static bucket k-d-tree over a point set.
///
/// ```
/// use parsim_geometry::Point;
/// use parsim_index::KdTree;
///
/// let items = vec![
///     (Point::new(vec![0.1, 0.1]).unwrap(), 0),
///     (Point::new(vec![0.9, 0.9]).unwrap(), 1),
///     (Point::new(vec![0.2, 0.15]).unwrap(), 2),
/// ];
/// let tree = KdTree::build(items, 2);
/// let q = Point::new(vec![0.0, 0.0]).unwrap();
/// assert_eq!(tree.knn(&q, 1)[0].item, 0);
/// ```
pub struct KdTree {
    dim: usize,
    nodes: Vec<KdNode>,
    root: usize,
    len: usize,
    disk: Option<Arc<SimDisk>>,
}

enum KdNode {
    Split {
        axis: usize,
        value: f64,
        left: usize,
        right: usize,
    },
    Bucket {
        entries: Vec<(Point, u64)>,
    },
}

impl KdTree {
    /// Builds the tree with buckets of at most `bucket_size` points,
    /// splitting at the median of the axis with the largest spread (the
    /// FBF "adapted" rule).
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty, dimensionalities are mixed, or
    /// `bucket_size == 0`.
    pub fn build(mut items: Vec<(Point, u64)>, bucket_size: usize) -> Self {
        assert!(!items.is_empty(), "empty data set");
        assert!(bucket_size > 0, "bucket size must be positive");
        let dim = items[0].0.dim();
        assert!(
            items.iter().all(|(p, _)| p.dim() == dim),
            "mixed dimensionalities"
        );
        let len = items.len();
        let mut tree = KdTree {
            dim,
            nodes: Vec::new(),
            root: 0,
            len,
            disk: None,
        };
        tree.root = tree.build_node(&mut items, bucket_size);
        tree
    }

    /// Attaches a simulated disk; every visited bucket charges one page.
    pub fn with_disk(mut self, disk: Arc<SimDisk>) -> Self {
        self.disk = Some(disk);
        self
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no points are indexed (never after `build`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of buckets (the unit the FBF cost analysis counts).
    pub fn bucket_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, KdNode::Bucket { .. }))
            .count()
    }

    fn build_node(&mut self, items: &mut [(Point, u64)], bucket_size: usize) -> usize {
        if items.len() <= bucket_size {
            let id = self.nodes.len();
            self.nodes.push(KdNode::Bucket {
                entries: items.to_vec(),
            });
            return id;
        }
        // Axis of largest spread.
        let mut best_axis = 0;
        let mut best_spread = -1.0;
        for axis in 0..self.dim {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for (p, _) in items.iter() {
                lo = lo.min(p[axis]);
                hi = hi.max(p[axis]);
            }
            if hi - lo > best_spread {
                best_spread = hi - lo;
                best_axis = axis;
            }
        }
        // Median split on that axis.
        let mid = items.len() / 2;
        items.select_nth_unstable_by(mid, |a, b| {
            a.0[best_axis]
                .partial_cmp(&b.0[best_axis])
                .expect("finite coordinates")
        });
        let value = items[mid].0[best_axis];
        let (left_items, right_items) = items.split_at_mut(mid);
        // Degenerate case: all coordinates equal on the chosen axis (and
        // hence, with spread 0 being the max, on every axis) — bucket it.
        if left_items.is_empty() || best_spread == 0.0 {
            let id = self.nodes.len();
            self.nodes.push(KdNode::Bucket {
                entries: left_items
                    .iter()
                    .chain(right_items.iter())
                    .cloned()
                    .collect(),
            });
            return id;
        }
        let left = self.build_node(left_items, bucket_size);
        let right = self.build_node(right_items, bucket_size);
        let id = self.nodes.len();
        self.nodes.push(KdNode::Split {
            axis: best_axis,
            value,
            left,
            right,
        });
        id
    }

    /// Finds the `k` nearest neighbors, sorted ascending.
    pub fn knn(&self, query: &Point, k: usize) -> Vec<Neighbor> {
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        if k == 0 {
            return Vec::new();
        }
        // Max-heap of the k best (dist2, item index into a side vec).
        let mut best: Vec<(f64, u64, Point)> = Vec::with_capacity(k + 1);
        self.search(self.root, query, k, &mut best);
        best.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite distances")
                .then(a.1.cmp(&b.1))
        });
        best.into_iter()
            .map(|(d2, item, point)| Neighbor {
                item,
                point,
                dist: d2.sqrt(),
            })
            .collect()
    }

    fn worst(&self, best: &[(f64, u64, Point)], k: usize) -> f64 {
        if best.len() < k {
            f64::INFINITY
        } else {
            best.iter().map(|b| b.0).fold(0.0, f64::max)
        }
    }

    fn search(&self, node: usize, query: &Point, k: usize, best: &mut Vec<(f64, u64, Point)>) {
        match &self.nodes[node] {
            KdNode::Bucket { entries } => {
                if let Some(disk) = &self.disk {
                    disk.touch_read(1);
                }
                for (p, item) in entries {
                    let d2 = p.dist2(query);
                    if best.len() < k {
                        best.push((d2, *item, p.clone()));
                    } else if d2 < self.worst(best, k) {
                        // Replace the current worst.
                        let worst_idx = best
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite distances"))
                            .map(|(i, _)| i)
                            .expect("non-empty best list");
                        best[worst_idx] = (d2, *item, p.clone());
                    }
                }
            }
            KdNode::Split {
                axis,
                value,
                left,
                right,
            } => {
                let diff = query[*axis] - value;
                let (near, far) = if diff < 0.0 {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.search(near, query, k, best);
                // Bounds-overlap-ball: the sibling region can only contain
                // a closer point if the ball crosses the split plane.
                if diff * diff <= self.worst(best, k) {
                    self.search(far, query, k, best);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::brute_force_knn;
    use parsim_datagen::{DataGenerator, UniformGenerator};

    fn items(dim: usize, n: usize, seed: u64) -> Vec<(Point, u64)> {
        UniformGenerator::new(dim)
            .generate(n, seed)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        for dim in [2usize, 5, 10] {
            let data = items(dim, 1200, 1);
            let tree = KdTree::build(data.clone(), 16);
            for q in UniformGenerator::new(dim).generate(10, 2) {
                let got = tree.knn(&q, 8);
                let want = brute_force_knn(&data, &q, 8);
                for (g, w) in got.iter().zip(want.iter()) {
                    assert!((g.dist - w.dist).abs() < 1e-12, "dim = {dim}");
                }
            }
        }
    }

    #[test]
    fn k_larger_than_n_returns_everything() {
        let data = items(3, 7, 3);
        let tree = KdTree::build(data, 2);
        let q = Point::new(vec![0.5; 3]).unwrap();
        assert_eq!(tree.knn(&q, 100).len(), 7);
        assert!(tree.knn(&q, 0).is_empty());
    }

    #[test]
    fn buckets_respect_size() {
        let data = items(4, 500, 4);
        let tree = KdTree::build(data, 10);
        assert!(tree.bucket_count() >= 500 / 10);
        assert_eq!(tree.len(), 500);
    }

    #[test]
    fn duplicate_points_do_not_recurse_forever() {
        let p = Point::new(vec![0.5, 0.5]).unwrap();
        let data: Vec<(Point, u64)> = (0..100).map(|i| (p.clone(), i)).collect();
        let tree = KdTree::build(data, 4);
        let res = tree.knn(&p, 5);
        assert_eq!(res.len(), 5);
        assert!(res.iter().all(|nb| nb.dist == 0.0));
    }

    #[test]
    fn page_accounting_grows_with_dimension() {
        // The FBF algorithm degenerates with dimension (the paper's
        // Section 2 point): visited buckets per query rise steeply.
        let mut visited = Vec::new();
        let mut buckets = Vec::new();
        for dim in [2usize, 8, 14] {
            let disk = Arc::new(SimDisk::new(0));
            let tree = KdTree::build(items(dim, 4000, 5), 20).with_disk(Arc::clone(&disk));
            buckets.push(tree.bucket_count() as f64);
            for q in UniformGenerator::new(dim).generate(10, 6) {
                tree.knn(&q, 10);
            }
            visited.push(disk.read_count() as f64 / 10.0);
        }
        // Low-d: a handful of buckets; d=8: most of the tree; d=14: nearly
        // every bucket every query — the degeneration of Section 2.
        assert!(visited[1] > 3.0 * visited[0], "{visited:?}");
        assert!(visited[2] > 0.9 * buckets[2], "{visited:?} of {buckets:?}");
    }
}
