//! Analytic cost model for nearest-neighbor search, after Berchtold,
//! Böhm, Keim & Kriegel \[BBKK 97\].
//!
//! The paper leans on its companion cost model: the NN-sphere around a
//! query grows rapidly with the dimension, so the number of pages any
//! sequential algorithm must access explodes (Figure 1 / Section 3.1).
//! This module makes that model executable against a concrete tree: the
//! expected number of *leaf* pages a k-NN query touches is the sum over
//! leaves of the probability that a uniformly placed query's NN-sphere
//! intersects the leaf's MBR,
//!
//! ```text
//! E[pages] = Σ_leaf vol( (MBR ⊕ [-r, r]^d) ∩ [0,1]^d )
//! ```
//!
//! with `r` the expected k-NN distance (sphere of volume `k/N`). The
//! Minkowski sum with the L2-ball is approximated per axis by the
//! enclosing box extension — an upper-bound flavor of the model that
//! reproduces the growth the paper reports.

use parsim_geometry::highdim::expected_knn_distance;
use parsim_geometry::HyperRect;

use crate::node::Node;
use crate::tree::SpatialTree;

/// The model's prediction for one tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPrediction {
    /// Expected k-NN distance used as the sphere radius.
    pub radius: f64,
    /// Expected leaf pages accessed per query.
    pub expected_leaf_pages: f64,
    /// Total leaves in the tree (the upper bound).
    pub total_leaves: usize,
}

/// Probability that a uniform query's box-extended sphere hits `mbr`.
fn access_probability(mbr: &HyperRect, r: f64) -> f64 {
    let mut p = 1.0;
    for i in 0..mbr.dim() {
        let lo = (mbr.lo(i) - r).max(0.0);
        let hi = (mbr.hi(i) + r).min(1.0);
        p *= (hi - lo).max(0.0);
    }
    p
}

/// Predicts the expected number of leaf pages a k-NN query over uniform
/// data in `[0,1]^d` reads from this tree.
pub fn predict_leaf_accesses(tree: &SpatialTree, k: usize) -> CostPrediction {
    assert!(k >= 1, "k must be positive");
    let n = tree.len().max(1);
    let dim = tree.params().dim;
    let radius = expected_knn_distance(dim, n.max(k), k.min(n));
    let mut expected = 0.0;
    let mut total_leaves = 0usize;
    for node in tree.iter_nodes() {
        if let Node::Leaf { .. } = node {
            total_leaves += 1;
            if let Some(mbr) = node.mbr() {
                expected += access_probability(&mbr, radius);
            }
        }
    }
    CostPrediction {
        radius,
        expected_leaf_pages: expected.min(total_leaves as f64),
        total_leaves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnAlgorithm;
    use crate::params::{TreeParams, TreeVariant};
    use crate::tree::{DiskSink, SpatialTree};
    use parsim_datagen::{DataGenerator, UniformGenerator};
    use parsim_geometry::Point;
    use parsim_storage::SimDisk;
    use std::sync::Arc;

    fn build(dim: usize, n: usize) -> (SpatialTree, Arc<SimDisk>) {
        let items: Vec<(Point, u64)> = UniformGenerator::new(dim)
            .generate(n, 3)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let disk = Arc::new(SimDisk::new(0));
        let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
        let tree = SpatialTree::bulk_load(params, items)
            .unwrap()
            .with_sink(Arc::new(DiskSink(Arc::clone(&disk))));
        (tree, disk)
    }

    /// Measured leaf accesses averaged over queries.
    fn measured(tree: &SpatialTree, disk: &SimDisk, dim: usize, k: usize) -> f64 {
        let queries = UniformGenerator::new(dim).generate(25, 11);
        let inner_nodes: u64 = tree.iter_nodes().filter(|n| !n.is_leaf()).count() as u64;
        let before = disk.read_count();
        for q in &queries {
            tree.knn(q, k, KnnAlgorithm::Hs);
        }
        let total = disk.read_count() - before;
        // Subtract a generous estimate of directory reads: at most every
        // inner node once per query.
        ((total as f64 / queries.len() as f64) - inner_nodes as f64).max(0.0)
    }

    #[test]
    fn model_predicts_growth_with_dimension() {
        let n = 10_000;
        let mut predictions = Vec::new();
        for dim in [4usize, 8, 12] {
            let (tree, _) = build(dim, n);
            let p = predict_leaf_accesses(&tree, 10);
            predictions.push(p.expected_leaf_pages / p.total_leaves as f64);
        }
        // The accessed fraction grows steeply with the dimension.
        assert!(predictions[1] > 2.0 * predictions[0], "{predictions:?}");
        assert!(predictions[2] > 1.5 * predictions[1], "{predictions:?}");
    }

    #[test]
    fn model_upper_bounds_and_tracks_measurement() {
        for dim in [6usize, 10] {
            let (tree, disk) = build(dim, 8_000);
            let predicted = predict_leaf_accesses(&tree, 10).expected_leaf_pages;
            let got = measured(&tree, &disk, dim, 10);
            // Box-extension makes the model an (approximate) upper bound;
            // it must be within the right order of magnitude.
            assert!(
                predicted >= 0.5 * got,
                "dim={dim}: predicted {predicted:.1} << measured {got:.1}"
            );
            assert!(
                predicted <= 30.0 * got.max(1.0),
                "dim={dim}: predicted {predicted:.1} >> measured {got:.1}"
            );
        }
    }

    #[test]
    fn radius_matches_highdim_model() {
        let (tree, _) = build(8, 5_000);
        let p1 = predict_leaf_accesses(&tree, 1);
        let p10 = predict_leaf_accesses(&tree, 10);
        assert!(p10.radius > p1.radius);
        assert!(p10.expected_leaf_pages >= p1.expected_leaf_pages);
        assert_eq!(p1.radius, expected_knn_distance(8, 5_000, 1));
    }

    #[test]
    fn prediction_never_exceeds_leaf_count() {
        let (tree, _) = build(14, 3_000); // huge radius regime
        let p = predict_leaf_accesses(&tree, 10);
        assert!(p.expected_leaf_pages <= p.total_leaves as f64 + 1e-9);
        assert!(p.expected_leaf_pages > 0.8 * p.total_leaves as f64);
    }
}
