//! Metric-generic search.
//!
//! The paper (like most feature-vector literature) works in the Euclidean
//! metric, which the hot paths of [`crate::knn`] hard-code for speed. Some
//! feature domains prefer other metrics — e.g. L1 for color histograms —
//! and the HS best-first algorithm and range search are correct for *any*
//! metric whose `MINDIST` lower-bounds the point distances inside a
//! rectangle ([`Metric::min_dist_rect`]). This module provides those
//! generic variants. (RKV's MINMAXDIST pruning is Euclidean-specific and
//! deliberately not generalized.)

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use parsim_geometry::{Metric, Point};

use crate::knn::Neighbor;
use crate::node::{Node, NodeId};
use crate::tree::SpatialTree;

struct Entry {
    key: f64,
    kind: Kind,
}

enum Kind {
    Node(NodeId),
    Point(NodeId, usize),
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.total_cmp(&self.key).then_with(|| {
            let rank = |k: &Kind| match k {
                Kind::Point(..) => 0,
                Kind::Node(..) => 1,
            };
            rank(&other.kind).cmp(&rank(&self.kind))
        })
    }
}

impl SpatialTree {
    /// k-NN under an arbitrary metric (best-first search). Exact for any
    /// metric whose rectangle bound is a true lower bound.
    pub fn knn_metric<M: Metric>(&self, query: &Point, k: usize, metric: &M) -> Vec<Neighbor> {
        assert_eq!(query.dim(), self.params().dim, "query dimension mismatch");
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut queue: BinaryHeap<Entry> = BinaryHeap::new();
        queue.push(Entry {
            key: 0.0,
            kind: Kind::Node(self.root_id()),
        });
        let mut out = Vec::with_capacity(k);
        while let Some(entry) = queue.pop() {
            match entry.kind {
                Kind::Node(id) => {
                    self.charge_visit(id);
                    match self.node(id) {
                        Node::Leaf { entries, .. } => {
                            for (i, (row, _)) in entries.iter().enumerate() {
                                queue.push(Entry {
                                    key: metric.dist_cmp_coords(query.coords(), row),
                                    kind: Kind::Point(id, i),
                                });
                            }
                        }
                        Node::Inner { entries, .. } => {
                            for e in entries {
                                queue.push(Entry {
                                    key: metric.min_dist_rect(query, &e.mbr),
                                    kind: Kind::Node(e.child),
                                });
                            }
                        }
                    }
                }
                Kind::Point(leaf, idx) => {
                    if let Node::Leaf { entries, .. } = self.node(leaf) {
                        out.push(Neighbor {
                            item: entries.item(idx),
                            point: entries.point(idx),
                            dist: metric.cmp_to_dist(entry.key),
                        });
                        if out.len() == k {
                            break;
                        }
                    }
                }
            }
        }
        out
    }

    /// ε-range query under an arbitrary metric, sorted by distance.
    pub fn range_query_metric<M: Metric>(
        &self,
        center: &Point,
        radius: f64,
        metric: &M,
    ) -> Vec<Neighbor> {
        assert_eq!(center.dim(), self.params().dim, "query dimension mismatch");
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut out = Vec::new();
        if !self.is_empty() {
            let bound = metric.dist_to_cmp(radius);
            self.range_metric_visit(self.root_id(), center, bound, metric, &mut out);
        }
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist));
        out
    }

    fn range_metric_visit<M: Metric>(
        &self,
        id: NodeId,
        center: &Point,
        bound: f64,
        metric: &M,
        out: &mut Vec<Neighbor>,
    ) {
        self.charge_visit(id);
        match self.node(id) {
            Node::Leaf { entries, .. } => {
                for (i, (row, item)) in entries.iter().enumerate() {
                    // Early abandon against the radius; `Some` may still
                    // exceed the bound, so the exact test is re-applied.
                    if let Some(c) = metric.dist_cmp_coords_bounded(center.coords(), row, bound) {
                        if c <= bound {
                            out.push(Neighbor {
                                item,
                                point: entries.point(i),
                                dist: metric.cmp_to_dist(c),
                            });
                        }
                    }
                }
            }
            Node::Inner { entries, .. } => {
                for e in entries {
                    if metric.min_dist_rect(center, &e.mbr) <= bound {
                        self.range_metric_visit(e.child, center, bound, metric, out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnAlgorithm;
    use crate::params::{TreeParams, TreeVariant};
    use parsim_datagen::{DataGenerator, UniformGenerator};
    use parsim_geometry::{Chebyshev, Euclidean, Manhattan};

    fn build(dim: usize, n: usize) -> (SpatialTree, Vec<Point>) {
        let pts = UniformGenerator::new(dim).generate(n, 7);
        let items: Vec<(Point, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        let params = TreeParams::for_dim(dim, TreeVariant::xtree_default())
            .unwrap()
            .with_capacities(8, 8)
            .unwrap();
        (SpatialTree::bulk_load(params, items).unwrap(), pts)
    }

    fn brute<M: Metric>(pts: &[Point], q: &Point, k: usize, metric: &M) -> Vec<f64> {
        let mut d: Vec<f64> = pts.iter().map(|p| metric.dist(p, q)).collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        d.truncate(k);
        d
    }

    #[test]
    fn euclidean_matches_dedicated_path() {
        let (tree, _) = build(5, 600);
        let q = Point::new(vec![0.4; 5]).unwrap();
        let generic = tree.knn_metric(&q, 10, &Euclidean);
        let dedicated = tree.knn(&q, 10, KnnAlgorithm::Hs);
        for (g, d) in generic.iter().zip(dedicated.iter()) {
            assert!((g.dist - d.dist).abs() < 1e-12);
        }
    }

    #[test]
    fn manhattan_knn_is_exact() {
        let (tree, pts) = build(4, 800);
        let q = Point::new(vec![0.3, 0.7, 0.1, 0.9]).unwrap();
        let got = tree.knn_metric(&q, 15, &Manhattan);
        let want = brute(&pts, &q, 15, &Manhattan);
        assert_eq!(got.len(), 15);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist - w).abs() < 1e-12);
        }
    }

    #[test]
    fn chebyshev_knn_is_exact() {
        let (tree, pts) = build(6, 700);
        let q = Point::new(vec![0.5; 6]).unwrap();
        let got = tree.knn_metric(&q, 8, &Chebyshev);
        let want = brute(&pts, &q, 8, &Chebyshev);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist - w).abs() < 1e-12);
        }
    }

    #[test]
    fn metric_range_matches_scan() {
        let (tree, pts) = build(3, 500);
        let q = Point::new(vec![0.5; 3]).unwrap();
        for radius in [0.1, 0.3, 0.6] {
            let got = tree.range_query_metric(&q, radius, &Manhattan);
            let want = pts
                .iter()
                .filter(|p| Manhattan.dist(p, &q) <= radius)
                .count();
            assert_eq!(got.len(), want, "radius {radius}");
            assert!(got.windows(2).all(|w| w[0].dist <= w[1].dist));
        }
    }

    #[test]
    fn results_ordered_under_all_metrics() {
        let (tree, _) = build(4, 400);
        let q = Point::new(vec![0.2, 0.4, 0.6, 0.8]).unwrap();
        let e = tree.knn_metric(&q, 30, &Euclidean);
        let m = tree.knn_metric(&q, 30, &Manhattan);
        let c = tree.knn_metric(&q, 30, &Chebyshev);
        for res in [&e, &m, &c] {
            assert!(res.windows(2).all(|w| w[0].dist <= w[1].dist));
        }
        // Different metrics generally disagree on the neighbor set.
        let ids = |v: &[Neighbor]| v.iter().map(|n| n.item).collect::<Vec<_>>();
        assert!(ids(&e) != ids(&m) || ids(&m) != ids(&c));
    }
}
