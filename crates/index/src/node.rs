//! Tree nodes and the node arena.

use parsim_geometry::{HyperRect, Point};
use parsim_storage::VectorArena;

use crate::params::ScanOrder;

/// Index of a node in the tree's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

/// An entry of a leaf node: one indexed point and its caller-supplied item
/// id.
///
/// Inside a leaf the entries are stored columnar ([`LeafEntries`]); this
/// owned form exists for the mutation paths (insert, split, condense) that
/// shuffle individual entries around.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafEntry {
    /// The indexed feature vector.
    pub point: Point,
    /// Caller-supplied identifier of the multimedia object.
    pub item: u64,
}

/// The entries of one leaf page, stored as a flat row-major
/// [`VectorArena`] plus a parallel item-id column.
///
/// This is the layout the hot k-NN scan runs over: one linear sweep of
/// contiguous `f64`s instead of a pointer chase through per-point heap
/// allocations (see `DESIGN.md`, "Memory layout & distance kernels").
#[derive(Debug, Clone, PartialEq)]
pub struct LeafEntries {
    coords: VectorArena,
    items: Vec<u64>,
}

impl LeafEntries {
    /// An empty entry block for points of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        LeafEntries {
            coords: VectorArena::new(dim),
            items: Vec::new(),
        }
    }

    /// Builds a block from owned entries (e.g. a split half or a bulk-load
    /// run) in natural coordinate order.
    pub fn from_entries(dim: usize, entries: Vec<LeafEntry>) -> Self {
        LeafEntries::from_entries_ordered(dim, ScanOrder::Natural, entries)
    }

    /// Builds a block from owned entries with the requested scan-order
    /// layout. [`ScanOrder::Energy`] computes this block's per-leaf energy
    /// ordering — coordinates sorted by descending variance over the
    /// block's rows — and permutes the scan views (and mirrors)
    /// accordingly; blocks whose energy order is already natural (or that
    /// are too small to rank) stay in the plain layout.
    pub fn from_entries_ordered(dim: usize, order: ScanOrder, entries: Vec<LeafEntry>) -> Self {
        let mut coords = VectorArena::with_capacity(dim, entries.len());
        let mut items = Vec::with_capacity(entries.len());
        for e in entries {
            coords.push(e.point.coords());
            items.push(e.item);
        }
        if order == ScanOrder::Energy {
            if let Some(perm) = energy_permutation(&coords) {
                coords.set_permutation(perm);
            }
        }
        LeafEntries { coords, items }
    }

    /// Vector dimension of every row.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.dim()
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the block holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends one entry.
    pub fn push(&mut self, entry: LeafEntry) {
        self.coords.push(entry.point.coords());
        self.items.push(entry.item);
    }

    /// Coordinate row of entry `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        self.coords.row(i)
    }

    /// Item id of entry `i`.
    #[inline]
    pub fn item(&self, i: usize) -> u64 {
        self.items[i]
    }

    /// Materializes entry `i`'s coordinates as an owned [`Point`].
    pub fn point(&self, i: usize) -> Point {
        Point::from_vec(self.coords.row(i).to_vec())
    }

    /// The whole block as one flat row-major slice in natural coordinate
    /// order (exact batch-kernel view).
    #[inline]
    pub fn flat_coords(&self) -> &[f64] {
        self.coords.as_flat()
    }

    /// The block in scan order: the energy-permuted copy when this leaf
    /// carries a permutation, otherwise the natural rows.
    #[inline]
    pub fn flat_scan_coords(&self) -> &[f64] {
        self.coords.as_flat_scan()
    }

    /// The leaf's scan-order permutation (stored lane `p` holds natural
    /// coordinate `perm[p]`), or `None` for the natural layout.
    #[inline]
    pub fn scan_perm(&self) -> Option<&[u32]> {
        self.coords.scan_perm()
    }

    /// The block's f32 mirror, flat row-major in scan order (phase-1 scan
    /// view; permute the query with [`LeafEntries::scan_perm`] first).
    #[inline]
    pub fn flat_f32(&self) -> &[f32] {
        self.coords.as_flat_f32()
    }

    /// Overestimate of the largest `‖row − f32 mirror row‖₂` in the block.
    #[inline]
    pub fn f32_radius(&self) -> f64 {
        self.coords.f32_radius()
    }

    /// The block's 8-bit quantization codes, flat row-major.
    #[inline]
    pub fn codes(&self) -> &[u8] {
        self.coords.as_codes()
    }

    /// Per-lane `(mins, scales)` of the block's quantization grids
    /// (scan-order lanes), or `None` while degenerate (empty block, range
    /// overflow).
    #[inline]
    pub fn q8_grid(&self) -> Option<(&[f64], &[f64])> {
        self.coords.q8_grid()
    }

    /// Per-lane squared grid steps — the weight vector of the weighted q8
    /// kernels. Valid whenever [`LeafEntries::q8_grid`] is `Some`.
    #[inline]
    pub fn q8_weights(&self) -> &[f64] {
        self.coords.q8_weights()
    }

    /// Overestimate of the largest `‖row − q8 reconstruction‖₂`.
    #[inline]
    pub fn q8_radius(&self) -> f64 {
        self.coords.q8_radius()
    }

    /// Encodes `query` on the block's quantization grid into `out` and
    /// returns an overestimate of `‖query − reconstruction‖₂`.
    #[inline]
    pub fn quantize_query(&self, query: &[f64], out: &mut Vec<i32>) -> f64 {
        self.coords.quantize_query(query, out)
    }

    /// Iterates over `(coordinate row, item id)` pairs in storage order.
    #[inline]
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (&[f64], u64)> {
        self.coords.iter().zip(self.items.iter().copied())
    }

    /// Materializes all entries as owned [`LeafEntry`] values (order
    /// preserved).
    pub fn to_entries(&self) -> Vec<LeafEntry> {
        self.iter()
            .map(|(row, item)| LeafEntry {
                point: Point::from_vec(row.to_vec()),
                item,
            })
            .collect()
    }

    /// Drains the block into owned entries, leaving it empty (dimension
    /// kept). Used by the split and condense paths that re-distribute
    /// entries.
    pub fn take_all(&mut self) -> Vec<LeafEntry> {
        let out = self.to_entries();
        self.coords.clear();
        self.items.clear();
        out
    }

    /// Removes entry `i` by moving the last entry into its slot (order not
    /// preserved).
    pub fn swap_remove(&mut self, i: usize) {
        self.coords.swap_remove(i);
        self.items.swap_remove(i);
    }

    /// Index of the entry matching `(coords, item)` exactly, if present.
    pub fn position(&self, coords: &[f64], item: u64) -> Option<usize> {
        self.iter()
            .position(|(row, it)| it == item && row == coords)
    }
}

/// The energy ordering of a block: coordinate indices sorted by descending
/// variance over the block's rows (stable — ties keep natural order), or
/// `None` when ordering cannot help (fewer than two rows or dimensions, or
/// the energy order already *is* the natural order).
///
/// Variance here is the uncentered-corrected sample form
/// `E[x²] − E[x]²`; only the relative order matters, so the cheap
/// single-pass form is fine (a slightly off tie-break costs nothing —
/// correctness never depends on the permutation chosen).
pub fn energy_permutation(coords: &VectorArena) -> Option<Vec<u32>> {
    let dim = coords.dim();
    let n = coords.len();
    if n < 2 || dim < 2 {
        return None;
    }
    let mut sum = vec![0.0f64; dim];
    let mut sumsq = vec![0.0f64; dim];
    for row in coords.iter() {
        for (j, &v) in row.iter().enumerate() {
            sum[j] += v;
            sumsq[j] += v * v;
        }
    }
    let inv = 1.0 / n as f64;
    let var: Vec<f64> = (0..dim)
        .map(|j| (sumsq[j] * inv - (sum[j] * inv).powi(2)).max(0.0))
        .collect();
    let mut perm: Vec<u32> = (0..dim as u32).collect();
    perm.sort_by(|&a, &b| {
        var[b as usize]
            .partial_cmp(&var[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    if perm.iter().enumerate().all(|(i, &p)| p as usize == i) {
        None
    } else {
        Some(perm)
    }
}

/// An entry of a directory node: the bounding rectangle of a child
/// subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct InnerEntry {
    /// Minimum bounding rectangle of everything below `child`.
    pub mbr: HyperRect,
    /// The child node.
    pub child: NodeId,
}

/// A tree node. `pages > 1` marks an X-tree supernode, which occupies
/// several contiguous disk pages and has proportionally enlarged capacity.
// The Leaf variant is much larger than Inner since the arena grew its
// scan-order views (permutation, permuted copy, mirrors, grids), but
// nodes live in a slab indexed by `NodeId` and are never moved or
// passed by value on hot paths, so boxing would only add a pointer
// chase to every leaf scan.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A leaf holding data points.
    Leaf {
        /// The stored points, flat row-major.
        entries: LeafEntries,
        /// Number of disk pages this node occupies.
        pages: u32,
    },
    /// A directory node holding child MBRs.
    Inner {
        /// The child entries.
        entries: Vec<InnerEntry>,
        /// Number of disk pages this node occupies (supernodes: > 1).
        pages: u32,
        /// X-tree split history: bitmask of the dimensions along which the
        /// entries of this node have been separated by past splits.
        split_dims: u64,
    },
}

impl Node {
    /// Creates an empty single-page leaf for points of dimension `dim`.
    pub fn empty_leaf(dim: usize) -> Self {
        Node::Leaf {
            entries: LeafEntries::new(dim),
            pages: 1,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Inner { entries, .. } => entries.len(),
        }
    }

    /// True if the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Number of disk pages the node occupies.
    pub fn pages(&self) -> u32 {
        match self {
            Node::Leaf { pages, .. } | Node::Inner { pages, .. } => *pages,
        }
    }

    /// The tight bounding rectangle of the node's entries, or `None` for an
    /// empty node.
    pub fn mbr(&self) -> Option<HyperRect> {
        match self {
            Node::Leaf { entries, .. } => {
                let mut it = entries.iter();
                let (first, _) = it.next()?;
                let mut mbr = HyperRect::from_coords(first);
                for (row, _) in it {
                    mbr.expand_to_coords(row);
                }
                Some(mbr)
            }
            Node::Inner { entries, .. } => {
                let mut it = entries.iter();
                let first = it.next()?;
                let mut mbr = first.mbr.clone();
                for e in it {
                    mbr.expand_to_rect(&e.mbr);
                }
                Some(mbr)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coords: &[f64]) -> Point {
        Point::new(coords.to_vec()).unwrap()
    }

    #[test]
    fn empty_leaf_has_no_mbr() {
        let n = Node::empty_leaf(2);
        assert!(n.is_leaf());
        assert!(n.is_empty());
        assert_eq!(n.pages(), 1);
        assert!(n.mbr().is_none());
    }

    #[test]
    fn leaf_mbr_covers_points() {
        let n = Node::Leaf {
            entries: LeafEntries::from_entries(
                2,
                vec![
                    LeafEntry {
                        point: p(&[0.1, 0.9]),
                        item: 0,
                    },
                    LeafEntry {
                        point: p(&[0.5, 0.2]),
                        item: 1,
                    },
                ],
            ),
            pages: 1,
        };
        let mbr = n.mbr().unwrap();
        assert_eq!(mbr.lo_coords(), &[0.1, 0.2]);
        assert_eq!(mbr.hi_coords(), &[0.5, 0.9]);
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn leaf_entries_round_trip_and_mutate() {
        let mut es = LeafEntries::new(2);
        es.push(LeafEntry {
            point: p(&[0.1, 0.2]),
            item: 7,
        });
        es.push(LeafEntry {
            point: p(&[0.3, 0.4]),
            item: 8,
        });
        es.push(LeafEntry {
            point: p(&[0.5, 0.6]),
            item: 9,
        });
        assert_eq!(es.dim(), 2);
        assert_eq!(es.row(1), &[0.3, 0.4]);
        assert_eq!(es.item(1), 8);
        assert_eq!(es.point(2), p(&[0.5, 0.6]));
        assert_eq!(es.flat_coords().len(), 6);
        assert_eq!(es.position(&[0.3, 0.4], 8), Some(1));
        assert_eq!(es.position(&[0.3, 0.4], 9), None);

        let copy = es.to_entries();
        assert_eq!(copy.len(), 3);
        assert_eq!(LeafEntries::from_entries(2, copy), es);

        es.swap_remove(0);
        assert_eq!(es.len(), 2);
        assert_eq!(es.item(0), 9);

        let drained = es.take_all();
        assert_eq!(drained.len(), 2);
        assert!(es.is_empty());
        assert_eq!(es.dim(), 2);
    }

    #[test]
    fn inner_mbr_covers_children() {
        let a = HyperRect::new(vec![0.0, 0.0], vec![0.3, 0.3]).unwrap();
        let b = HyperRect::new(vec![0.5, 0.5], vec![1.0, 0.8]).unwrap();
        let n = Node::Inner {
            entries: vec![
                InnerEntry {
                    mbr: a,
                    child: NodeId(1),
                },
                InnerEntry {
                    mbr: b,
                    child: NodeId(2),
                },
            ],
            pages: 2,
            split_dims: 0b1,
        };
        let mbr = n.mbr().unwrap();
        assert_eq!(mbr.lo_coords(), &[0.0, 0.0]);
        assert_eq!(mbr.hi_coords(), &[1.0, 0.8]);
        assert_eq!(n.pages(), 2);
        assert!(!n.is_leaf());
    }
}
