//! Tree nodes and the node arena.

use parsim_geometry::{HyperRect, Point};

/// Index of a node in the tree's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

/// An entry of a leaf node: one indexed point and its caller-supplied item
/// id.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafEntry {
    /// The indexed feature vector.
    pub point: Point,
    /// Caller-supplied identifier of the multimedia object.
    pub item: u64,
}

/// An entry of a directory node: the bounding rectangle of a child
/// subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct InnerEntry {
    /// Minimum bounding rectangle of everything below `child`.
    pub mbr: HyperRect,
    /// The child node.
    pub child: NodeId,
}

/// A tree node. `pages > 1` marks an X-tree supernode, which occupies
/// several contiguous disk pages and has proportionally enlarged capacity.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A leaf holding data points.
    Leaf {
        /// The stored points.
        entries: Vec<LeafEntry>,
        /// Number of disk pages this node occupies.
        pages: u32,
    },
    /// A directory node holding child MBRs.
    Inner {
        /// The child entries.
        entries: Vec<InnerEntry>,
        /// Number of disk pages this node occupies (supernodes: > 1).
        pages: u32,
        /// X-tree split history: bitmask of the dimensions along which the
        /// entries of this node have been separated by past splits.
        split_dims: u64,
    },
}

impl Node {
    /// Creates an empty single-page leaf.
    pub fn empty_leaf() -> Self {
        Node::Leaf {
            entries: Vec::new(),
            pages: 1,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Inner { entries, .. } => entries.len(),
        }
    }

    /// True if the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Number of disk pages the node occupies.
    pub fn pages(&self) -> u32 {
        match self {
            Node::Leaf { pages, .. } | Node::Inner { pages, .. } => *pages,
        }
    }

    /// The tight bounding rectangle of the node's entries, or `None` for an
    /// empty node.
    pub fn mbr(&self) -> Option<HyperRect> {
        match self {
            Node::Leaf { entries, .. } => {
                let mut it = entries.iter();
                let first = it.next()?;
                let mut mbr = HyperRect::from_point(&first.point);
                for e in it {
                    mbr.expand_to_point(&e.point);
                }
                Some(mbr)
            }
            Node::Inner { entries, .. } => {
                let mut it = entries.iter();
                let first = it.next()?;
                let mut mbr = first.mbr.clone();
                for e in it {
                    mbr.expand_to_rect(&e.mbr);
                }
                Some(mbr)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coords: &[f64]) -> Point {
        Point::new(coords.to_vec()).unwrap()
    }

    #[test]
    fn empty_leaf_has_no_mbr() {
        let n = Node::empty_leaf();
        assert!(n.is_leaf());
        assert!(n.is_empty());
        assert_eq!(n.pages(), 1);
        assert!(n.mbr().is_none());
    }

    #[test]
    fn leaf_mbr_covers_points() {
        let n = Node::Leaf {
            entries: vec![
                LeafEntry {
                    point: p(&[0.1, 0.9]),
                    item: 0,
                },
                LeafEntry {
                    point: p(&[0.5, 0.2]),
                    item: 1,
                },
            ],
            pages: 1,
        };
        let mbr = n.mbr().unwrap();
        assert_eq!(mbr.lo_coords(), &[0.1, 0.2]);
        assert_eq!(mbr.hi_coords(), &[0.5, 0.9]);
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn inner_mbr_covers_children() {
        let a = HyperRect::new(vec![0.0, 0.0], vec![0.3, 0.3]).unwrap();
        let b = HyperRect::new(vec![0.5, 0.5], vec![1.0, 0.8]).unwrap();
        let n = Node::Inner {
            entries: vec![
                InnerEntry {
                    mbr: a,
                    child: NodeId(1),
                },
                InnerEntry {
                    mbr: b,
                    child: NodeId(2),
                },
            ],
            pages: 2,
            split_dims: 0b1,
        };
        let mbr = n.mbr().unwrap();
        assert_eq!(mbr.lo_coords(), &[0.0, 0.0]);
        assert_eq!(mbr.hi_coords(), &[1.0, 0.8]);
        assert_eq!(n.pages(), 2);
        assert!(!n.is_leaf());
    }
}
