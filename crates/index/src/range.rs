//! Range queries: window (rectangle) and sphere (ε-range) search.

use parsim_geometry::{kernel, HyperRect, Point};

use crate::knn::Neighbor;
use crate::node::{Node, NodeId};
use crate::tree::SpatialTree;

impl SpatialTree {
    /// Returns all points inside the closed query window.
    pub fn window_query(&self, window: &HyperRect) -> Vec<Neighbor> {
        assert_eq!(window.dim(), self.params().dim, "window dimension mismatch");
        let mut out = Vec::new();
        if !self.is_empty() {
            self.window_visit(self.root_id(), window, &mut out);
        }
        out
    }

    fn window_visit(&self, id: NodeId, window: &HyperRect, out: &mut Vec<Neighbor>) {
        self.charge_visit(id);
        match self.node(id) {
            Node::Leaf { entries, .. } => {
                for (i, (row, item)) in entries.iter().enumerate() {
                    if window.contains_coords(row) {
                        out.push(Neighbor {
                            item,
                            point: entries.point(i),
                            dist: 0.0,
                        });
                    }
                }
            }
            Node::Inner { entries, .. } => {
                for e in entries {
                    if e.mbr.intersects(window) {
                        self.window_visit(e.child, window, out);
                    }
                }
            }
        }
    }

    /// Returns all points within Euclidean distance `radius` of `center`,
    /// sorted by ascending distance — a similarity ε-range query.
    pub fn range_query(&self, center: &Point, radius: f64) -> Vec<Neighbor> {
        assert_eq!(center.dim(), self.params().dim, "query dimension mismatch");
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut out = Vec::new();
        if !self.is_empty() {
            self.range_visit(self.root_id(), center, radius * radius, &mut out);
        }
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist));
        out
    }

    fn range_visit(&self, id: NodeId, center: &Point, r2: f64, out: &mut Vec<Neighbor>) {
        self.charge_visit(id);
        match self.node(id) {
            Node::Leaf { entries, .. } => {
                for (i, (row, item)) in entries.iter().enumerate() {
                    // Early abandon against the query radius. `Some(d2)`
                    // can still exceed `r2` (checkpoints sit at chunk
                    // boundaries only), so the exact test is re-applied.
                    if let Some(d2) = kernel::dist2_bounded(center.coords(), row, r2) {
                        if d2 <= r2 {
                            out.push(Neighbor {
                                item,
                                point: entries.point(i),
                                dist: d2.sqrt(),
                            });
                        }
                    }
                }
            }
            Node::Inner { entries, .. } => {
                for e in entries {
                    if e.mbr.min_dist2(center) <= r2 {
                        self.range_visit(e.child, center, r2, out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{TreeParams, TreeVariant};
    use parsim_datagen::{DataGenerator, UniformGenerator};

    fn build(dim: usize, n: usize, seed: u64) -> (SpatialTree, Vec<Point>) {
        let pts = UniformGenerator::new(dim).generate(n, seed);
        let params = TreeParams::for_dim(dim, TreeVariant::xtree_default())
            .unwrap()
            .with_capacities(8, 8)
            .unwrap();
        let mut t = SpatialTree::new(params);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        (t, pts)
    }

    #[test]
    fn window_query_matches_scan() {
        let (tree, pts) = build(4, 800, 1);
        let window = HyperRect::new(vec![0.2; 4], vec![0.7; 4]).unwrap();
        let mut got: Vec<u64> = tree.window_query(&window).iter().map(|n| n.item).collect();
        got.sort_unstable();
        let want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| window.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn range_query_matches_scan() {
        let (tree, pts) = build(3, 600, 2);
        let center = Point::new(vec![0.5, 0.5, 0.5]).unwrap();
        let radius = 0.25;
        let mut got: Vec<u64> = tree
            .range_query(&center, radius)
            .iter()
            .map(|n| n.item)
            .collect();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(&center) <= radius)
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn range_query_results_sorted() {
        let (tree, _) = build(5, 400, 3);
        let center = Point::new(vec![0.1; 5]).unwrap();
        let res = tree.range_query(&center, 0.8);
        assert!(res.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn empty_window_returns_nothing() {
        let (tree, _) = build(2, 100, 4);
        let window = HyperRect::new(vec![2.0, 2.0], vec![3.0, 3.0]).unwrap();
        assert!(tree.window_query(&window).is_empty());
        let center = Point::new(vec![5.0, 5.0]).unwrap();
        assert!(tree.range_query(&center, 0.1).is_empty());
    }

    #[test]
    fn zero_radius_finds_exact_matches_only() {
        let (tree, pts) = build(3, 200, 5);
        let res = tree.range_query(&pts[42], 0.0);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].item, 42);
    }
}
