//! Seeded random-projection (SimHash) locality-sensitive hashing.
//!
//! The approximate tier hashes every `VectorArena` row into `L`
//! independent tables of `K`-bit signatures: bit `k` of table `t` is the
//! sign of `g_{t,k} · (x − mean)`, where the `g_{t,k}` are seeded
//! Gaussian hyperplanes and `mean` is the per-dimension dataset mean.
//! Centering matters: the workspace's generators produce data in
//! `[0, 1]^d`, where hyperplanes through the origin see almost every
//! point on the same side and the signature collapses to a handful of
//! buckets.
//!
//! Two properties are **by construction** here, because the parallel
//! engine's recall tests lean on them:
//!
//! * **Table-prefix stability.** Table `t`'s hyperplanes come from an
//!   RNG seeded by `mix(seed, t)`, independent of the total table count,
//!   so an `L+1`-table index contains the first `L` tables verbatim and
//!   the candidate set — hence recall@k — is monotone non-decreasing
//!   in `L` for a fixed seed.
//! * **Probe-prefix stability.** [`LshTables::probe_sequence`] orders
//!   multi-probe perturbations by binary counting over the query's bit
//!   positions sorted by ascending margin `|g·(x − mean)|`, so the
//!   sequence for `probes = p` is a prefix of the sequence for `p + 1`
//!   and recall is monotone in the probe count too.

use parsim_geometry::Point;
use rand::distr::StandardNormal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build-time configuration of the approximate tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshConfig {
    /// Number of independent hash tables (`L`). More tables raise recall
    /// and index size linearly.
    pub tables: usize,
    /// Hyperplanes — signature bits — per table (`K`), at most 24.
    /// More bits shrink buckets: higher precision, lower per-probe
    /// recall.
    pub hyperplanes: usize,
    /// Seed for the Gaussian hyperplane draws. The whole structure is a
    /// pure function of `(seed, tables, hyperplanes, data)`.
    pub seed: u64,
}

impl LshConfig {
    /// A reasonable starting point: 8 tables × 12 bits.
    pub fn new(seed: u64) -> LshConfig {
        LshConfig {
            tables: 8,
            hyperplanes: 12,
            seed,
        }
    }

    /// Sets the table count (`L`).
    pub fn tables(mut self, tables: usize) -> LshConfig {
        self.tables = tables;
        self
    }

    /// Sets the hyperplane count per table (`K`).
    pub fn hyperplanes(mut self, hyperplanes: usize) -> LshConfig {
        self.hyperplanes = hyperplanes;
        self
    }
}

/// SplitMix64-style mix of the config seed with a table index, so each
/// table's hyperplane stream is independent of the total table count.
fn mix_seed(seed: u64, table: u64) -> u64 {
    let mut z = seed ^ table.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One table's hyperplanes, row-major: `K` rows of `dim` coordinates.
#[derive(Debug, Clone)]
struct Table {
    planes: Vec<f64>,
}

/// The fitted hash-function family: `L` tables of `K` seeded Gaussian
/// hyperplanes plus the centering vector.
#[derive(Debug, Clone)]
pub struct LshTables {
    dim: usize,
    bits: usize,
    tables: Vec<Table>,
    mean: Vec<f64>,
}

impl LshTables {
    /// Fits the family to a dataset: draws the seeded hyperplanes and
    /// computes the per-dimension mean of `data` for centering.
    ///
    /// # Panics
    ///
    /// Panics if `tables` or `hyperplanes` is zero, `hyperplanes > 24`,
    /// or `dim` is zero.
    pub fn fit<'a, I>(config: &LshConfig, dim: usize, data: I) -> LshTables
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        assert!(config.tables >= 1, "LshConfig.tables must be >= 1");
        assert!(
            (1..=24).contains(&config.hyperplanes),
            "LshConfig.hyperplanes must be in 1..=24"
        );
        assert!(dim >= 1, "dim must be >= 1");
        let mut mean = vec![0.0; dim];
        let mut n = 0usize;
        for row in data {
            assert_eq!(row.len(), dim, "row dimensionality mismatch");
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += x;
            }
            n += 1;
        }
        if n > 0 {
            for m in &mut mean {
                *m /= n as f64;
            }
        }
        let tables = (0..config.tables)
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(mix_seed(config.seed, t as u64));
                let planes = (0..config.hyperplanes * dim)
                    .map(|_| rng.sample(StandardNormal))
                    .collect();
                Table { planes }
            })
            .collect();
        LshTables {
            dim,
            bits: config.hyperplanes,
            tables,
            mean,
        }
    }

    /// The dimensionality the family was fitted to.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Signature bits per table (`K`).
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of tables (`L`).
    pub fn tables(&self) -> usize {
        self.tables.len()
    }

    /// Per-bit projections of `row` under table `table`:
    /// `g_{t,k} · (row − mean)` for each hyperplane `k`.
    fn project(&self, table: usize, row: &[f64]) -> Vec<f64> {
        debug_assert_eq!(row.len(), self.dim);
        let planes = &self.tables[table].planes;
        (0..self.bits)
            .map(|k| {
                let g = &planes[k * self.dim..(k + 1) * self.dim];
                g.iter()
                    .zip(row)
                    .zip(&self.mean)
                    .map(|((&gi, &xi), &mi)| gi * (xi - mi))
                    .sum()
            })
            .collect()
    }

    /// The `K`-bit signature of `row` under table `table`: bit `k` is set
    /// iff the projection onto hyperplane `k` is non-negative.
    pub fn signature(&self, table: usize, row: &[f64]) -> u32 {
        self.project(table, row)
            .iter()
            .enumerate()
            .fold(
                0u32,
                |sig, (k, &p)| {
                    if p >= 0.0 {
                        sig | (1 << k)
                    } else {
                        sig
                    }
                },
            )
    }

    /// Convenience wrapper over [`LshTables::signature`] for a [`Point`].
    pub fn signature_of(&self, table: usize, point: &Point) -> u32 {
        self.signature(table, point.coords())
    }

    /// The first `probes` buckets to inspect in `table` for `query`, in
    /// multi-probe order: the exact signature first, then perturbations
    /// by binary counting over the bit positions sorted by ascending
    /// margin `|projection|` (flipping the least certain bits first).
    ///
    /// The returned sequence for `probes = p` is a strict prefix of the
    /// sequence for `probes = p + 1` (until all `2^K` buckets are
    /// enumerated), which makes recall monotone in the probe count.
    pub fn probe_sequence(&self, table: usize, query: &[f64], probes: usize) -> Vec<u32> {
        let proj = self.project(table, query);
        let sig = proj.iter().enumerate().fold(
            0u32,
            |s, (k, &p)| {
                if p >= 0.0 {
                    s | (1 << k)
                } else {
                    s
                }
            },
        );
        // Bit positions from least to most certain; ties broken by bit
        // index so the order is a pure function of the projections.
        let mut order: Vec<usize> = (0..self.bits).collect();
        order.sort_by(|&a, &b| proj[a].abs().total_cmp(&proj[b].abs()).then(a.cmp(&b)));
        let limit = probes.min(1usize << self.bits);
        let mut out = Vec::with_capacity(limit);
        // Counting i = 0, 1, 2, ... and mapping bit j of i to a flip of
        // order[j] enumerates perturbation subsets smallest-margin-first;
        // the enumeration order never depends on `probes`.
        for i in 0..limit as u32 {
            let mut flips = 0u32;
            for (j, &pos) in order.iter().enumerate() {
                if i & (1 << j) != 0 {
                    flips |= 1 << pos;
                }
            }
            out.push(sig ^ flips);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_rows(n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| ((i * 31 + d * 17) % 100) as f64 / 100.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn fit_is_deterministic_for_fixed_seed() {
        let rows = grid_rows(200, 6);
        let cfg = LshConfig::new(42).tables(4).hyperplanes(10);
        let a = LshTables::fit(&cfg, 6, rows.iter().map(|r| r.as_slice()));
        let b = LshTables::fit(&cfg, 6, rows.iter().map(|r| r.as_slice()));
        for t in 0..4 {
            for row in &rows {
                assert_eq!(a.signature(t, row), b.signature(t, row));
            }
            assert_eq!(
                a.probe_sequence(t, &rows[0], 8),
                b.probe_sequence(t, &rows[0], 8)
            );
        }
    }

    #[test]
    fn tables_are_a_prefix_of_larger_families() {
        let rows = grid_rows(150, 5);
        let small = LshConfig::new(7).tables(3).hyperplanes(8);
        let large = LshConfig::new(7).tables(6).hyperplanes(8);
        let a = LshTables::fit(&small, 5, rows.iter().map(|r| r.as_slice()));
        let b = LshTables::fit(&large, 5, rows.iter().map(|r| r.as_slice()));
        for t in 0..3 {
            for row in &rows {
                assert_eq!(a.signature(t, row), b.signature(t, row));
            }
        }
    }

    #[test]
    fn probe_sequence_is_prefix_stable_and_unique() {
        let rows = grid_rows(120, 4);
        let cfg = LshConfig::new(3).tables(2).hyperplanes(6);
        let tables = LshTables::fit(&cfg, 4, rows.iter().map(|r| r.as_slice()));
        let q = &rows[17];
        let full = tables.probe_sequence(0, q, 64);
        assert_eq!(full.len(), 64);
        let mut sorted = full.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "probe sequence must enumerate buckets");
        assert_eq!(full[0], tables.signature(0, q));
        for p in 1..=64 {
            assert_eq!(tables.probe_sequence(0, q, p), full[..p].to_vec());
        }
        // Over-asking saturates at 2^K.
        assert_eq!(tables.probe_sequence(0, q, 1000).len(), 64);
    }

    #[test]
    fn signatures_spread_centered_data() {
        // Without centering, [0,1]^d data collapses into few buckets;
        // with it, nearby rows still collide but the family uses many
        // buckets overall.
        let rows = grid_rows(400, 8);
        let cfg = LshConfig::new(9).tables(1).hyperplanes(10);
        let tables = LshTables::fit(&cfg, 8, rows.iter().map(|r| r.as_slice()));
        let mut sigs: Vec<u32> = rows.iter().map(|r| tables.signature(0, r)).collect();
        sigs.sort_unstable();
        sigs.dedup();
        assert!(sigs.len() > 10, "only {} distinct buckets", sigs.len());
    }

    #[test]
    fn nearby_points_collide_more_than_distant_ones() {
        let cfg = LshConfig::new(5).tables(8).hyperplanes(8);
        let rows = grid_rows(300, 6);
        let tables = LshTables::fit(&cfg, 6, rows.iter().map(|r| r.as_slice()));
        let base = vec![0.3; 6];
        let near: Vec<f64> = base.iter().map(|x| x + 0.01).collect();
        let far = vec![0.9; 6];
        let collide = |a: &[f64], b: &[f64]| {
            (0..8)
                .filter(|&t| tables.signature(t, a) == tables.signature(t, b))
                .count()
        };
        assert!(collide(&base, &near) > collide(&base, &far));
    }
}
