//! A TV-style telescope-vector index (simplified TV-tree).
//!
//! The paper's introduction names two structures "specifically developed
//! for indexing high-dimensional data": the TV-tree \[LJF 94\] and the
//! X-tree. The TV-tree's idea is to describe regions by **telescope
//! vectors**: only the first `α` *active* dimensions of the
//! (energy-ordered) feature vector participate in a node's region, so
//! directory entries stay small and the fan-out high — which works
//! precisely when the feature transform concentrates energy in the leading
//! dimensions (as Fourier descriptors do).
//!
//! This implementation is a faithful *simplification*: regions are L2
//! balls over a fixed `α`-dimensional prefix after a variance-descending
//! dimension reordering (the original telescopes α adaptively and uses
//! more elaborate splits). The search is nevertheless **exact** for the
//! full-dimensional Euclidean metric, because ignoring trailing dimensions
//! can only shrink distances:
//!
//! ```text
//! MINDIST(q, node) = max(0, ‖q[..α] − center‖ − radius) ≤ ‖q − p‖
//! ```
//!
//! for every point `p` in the subtree. The `ext5` narrative applies: with
//! energy-concentrating data a small `α` prunes well; on uniform data the
//! prefix carries `α/d` of the distance and pruning fades — the "limited
//! performance improvements for nearest-neighbor queries" the paper
//! reports for this structure family.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use parsim_geometry::Point;
use parsim_storage::SimDisk;

use crate::knn::Neighbor;

/// A simplified TV-tree.
pub struct TvTree {
    dim: usize,
    alpha: usize,
    capacity: usize,
    /// Dimension permutation, variance-descending.
    order: Vec<usize>,
    nodes: Vec<TvNode>,
    root: usize,
    len: usize,
    disk: Option<Arc<SimDisk>>,
}

struct Ball {
    /// Center in the reordered α-dimensional prefix space.
    center: Vec<f64>,
    radius: f64,
}

enum TvNode {
    Inner { balls: Vec<(Ball, usize)> },
    Leaf { entries: Vec<(Point, u64)> },
}

impl TvTree {
    /// Builds the tree by insertion with `alpha` active dimensions and
    /// node capacity `capacity`.
    ///
    /// # Panics
    ///
    /// Panics on an empty set, mixed dimensionalities, `alpha == 0` or
    /// `capacity < 2`.
    pub fn build(items: Vec<(Point, u64)>, alpha: usize, capacity: usize) -> Self {
        assert!(!items.is_empty(), "empty data set");
        assert!(alpha > 0, "alpha must be positive");
        assert!(capacity >= 2, "capacity must be at least 2");
        let dim = items[0].0.dim();
        assert!(
            items.iter().all(|(p, _)| p.dim() == dim),
            "mixed dimensionalities"
        );
        let alpha = alpha.min(dim);

        // Variance-descending dimension ordering (the stand-in for the
        // TV-tree's assumption of an energy-concentrating transform).
        let n = items.len() as f64;
        let mut stats = vec![(0.0f64, 0.0f64); dim]; // (sum, sumsq)
        for (p, _) in &items {
            for (i, &c) in p.iter().enumerate() {
                stats[i].0 += c;
                stats[i].1 += c * c;
            }
        }
        let mut order: Vec<usize> = (0..dim).collect();
        let variance = |i: usize| -> f64 { stats[i].1 / n - (stats[i].0 / n) * (stats[i].0 / n) };
        order.sort_by(|&a, &b| {
            variance(b)
                .partial_cmp(&variance(a))
                .expect("finite variances")
        });

        let mut tree = TvTree {
            dim,
            alpha,
            capacity,
            order,
            nodes: vec![TvNode::Leaf {
                entries: Vec::new(),
            }],
            root: 0,
            len: 0,
            disk: None,
        };
        for (p, item) in items {
            tree.insert(p, item);
        }
        tree
    }

    /// Attaches a simulated disk; every visited node charges one page.
    pub fn with_disk(mut self, disk: Arc<SimDisk>) -> Self {
        self.disk = Some(disk);
        self
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no points are indexed (never after `build`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The active-dimension count.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Projects a point into the reordered α-prefix space.
    fn project(&self, p: &Point) -> Vec<f64> {
        self.order[..self.alpha].iter().map(|&i| p[i]).collect()
    }

    fn prefix_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    fn insert(&mut self, p: Point, item: u64) {
        let proj = self.project(&p);
        let mut path = Vec::new();
        let mut current = self.root;
        loop {
            match &self.nodes[current] {
                TvNode::Leaf { .. } => break,
                TvNode::Inner { balls } => {
                    // Closest center wins; its ball grows to cover.
                    let (bi, _) = balls
                        .iter()
                        .enumerate()
                        .map(|(i, (b, _))| (i, Self::prefix_dist(&b.center, &proj)))
                        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                        .expect("inner nodes are non-empty");
                    path.push((current, bi));
                    let child = {
                        let TvNode::Inner { balls } = &mut self.nodes[current] else {
                            unreachable!()
                        };
                        let (ball, child) = &mut balls[bi];
                        let d = Self::prefix_dist(&ball.center, &proj);
                        if d > ball.radius {
                            ball.radius = d;
                        }
                        *child
                    };
                    current = child;
                }
            }
        }
        let TvNode::Leaf { entries } = &mut self.nodes[current] else {
            unreachable!()
        };
        entries.push((p, item));
        self.len += 1;
        if entries.len() > self.capacity {
            self.split(current, path);
        }
    }

    /// Splits an overflowing node by the farthest pair of its (projected)
    /// members, assigning each member to the nearer seed.
    fn split(&mut self, node: usize, mut path: Vec<(usize, usize)>) {
        {
            // Collect projected members of the overflowing node.
            let (proj, is_leaf) = match &self.nodes[node] {
                TvNode::Leaf { entries } => (
                    entries
                        .iter()
                        .map(|(p, _)| self.project(p))
                        .collect::<Vec<_>>(),
                    true,
                ),
                TvNode::Inner { balls } => {
                    (balls.iter().map(|(b, _)| b.center.clone()).collect(), false)
                }
            };
            // Farthest pair (linear scan from an extreme point is fine).
            let far_from = |from: usize| -> usize {
                proj.iter()
                    .enumerate()
                    .max_by(|a, b| {
                        Self::prefix_dist(a.1, &proj[from])
                            .partial_cmp(&Self::prefix_dist(b.1, &proj[from]))
                            .expect("finite")
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty")
            };
            let s1 = far_from(0);
            let s2 = far_from(s1);
            let assignment: Vec<bool> = proj
                .iter()
                .map(|v| Self::prefix_dist(v, &proj[s1]) <= Self::prefix_dist(v, &proj[s2]))
                .collect();
            // Guard degenerate all-one-side assignments (identical points).
            let left_count = assignment.iter().filter(|&&a| a).count();
            let assignment = if left_count == 0 || left_count == proj.len() {
                (0..proj.len()).map(|i| i % 2 == 0).collect()
            } else {
                assignment
            };

            let (left_id, right_id) = if is_leaf {
                let TvNode::Leaf { entries } = &mut self.nodes[node] else {
                    unreachable!()
                };
                let moved = std::mem::take(entries);
                let (l, r): (Vec<_>, Vec<_>) = moved
                    .into_iter()
                    .zip(assignment.iter())
                    .partition(|(_, &a)| a);
                let l: Vec<(Point, u64)> = l.into_iter().map(|(e, _)| e).collect();
                let r: Vec<(Point, u64)> = r.into_iter().map(|(e, _)| e).collect();
                self.nodes[node] = TvNode::Leaf { entries: l };
                self.nodes.push(TvNode::Leaf { entries: r });
                (node, self.nodes.len() - 1)
            } else {
                let TvNode::Inner { balls } = &mut self.nodes[node] else {
                    unreachable!()
                };
                let moved = std::mem::take(balls);
                let (l, r): (Vec<_>, Vec<_>) = moved
                    .into_iter()
                    .zip(assignment.iter())
                    .partition(|(_, &a)| a);
                let l: Vec<(Ball, usize)> = l.into_iter().map(|(e, _)| e).collect();
                let r: Vec<(Ball, usize)> = r.into_iter().map(|(e, _)| e).collect();
                self.nodes[node] = TvNode::Inner { balls: l };
                self.nodes.push(TvNode::Inner { balls: r });
                (node, self.nodes.len() - 1)
            };

            let left_ball = self.bounding_ball(left_id);
            let right_ball = self.bounding_ball(right_id);

            if let Some((parent, idx)) = path.pop() {
                let TvNode::Inner { balls } = &mut self.nodes[parent] else {
                    unreachable!()
                };
                balls[idx] = (left_ball, left_id);
                balls.push((right_ball, right_id));
                if balls.len() > self.capacity {
                    // Propagate the overflow upward.
                    self.split(parent, path);
                }
            } else {
                // Root split.
                self.nodes.push(TvNode::Inner {
                    balls: vec![(left_ball, left_id), (right_ball, right_id)],
                });
                self.root = self.nodes.len() - 1;
            }
        }
    }

    /// Smallest prefix ball (centroid-centered) covering a node's members.
    fn bounding_ball(&self, node: usize) -> Ball {
        let members: Vec<Vec<f64>> = match &self.nodes[node] {
            TvNode::Leaf { entries } => entries.iter().map(|(p, _)| self.project(p)).collect(),
            TvNode::Inner { balls } => balls.iter().map(|(b, _)| b.center.clone()).collect(),
        };
        let m = members.len() as f64;
        let mut center = vec![0.0; self.alpha];
        for v in &members {
            for (c, x) in center.iter_mut().zip(v) {
                *c += x;
            }
        }
        for c in &mut center {
            *c /= m;
        }
        let radius = match &self.nodes[node] {
            TvNode::Leaf { .. } => members
                .iter()
                .map(|v| Self::prefix_dist(v, &center))
                .fold(0.0, f64::max),
            TvNode::Inner { balls } => balls
                .iter()
                .map(|(b, _)| Self::prefix_dist(&b.center, &center) + b.radius)
                .fold(0.0, f64::max),
        };
        Ball { center, radius }
    }

    /// Exact k-NN (full-dimensional Euclidean) via best-first search with
    /// the telescope lower bound.
    pub fn knn(&self, query: &Point, k: usize) -> Vec<Neighbor> {
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        let qproj = self.project(query);

        #[derive(PartialEq)]
        struct Cand(f64, usize);
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> Ordering {
                other.0.partial_cmp(&self.0).expect("finite distances")
            }
        }

        let mut queue = BinaryHeap::new();
        queue.push(Cand(0.0, self.root));
        let mut best: Vec<(f64, u64, Point)> = Vec::new(); // true dist
        let worst = |best: &Vec<(f64, u64, Point)>| -> f64 {
            if best.len() < k {
                f64::INFINITY
            } else {
                best.iter().map(|b| b.0).fold(0.0, f64::max)
            }
        };
        while let Some(Cand(bound, node)) = queue.pop() {
            if bound > worst(&best) {
                break;
            }
            if let Some(disk) = &self.disk {
                disk.touch_read(1);
            }
            match &self.nodes[node] {
                TvNode::Leaf { entries } => {
                    for (p, item) in entries {
                        let d = p.dist(query);
                        if best.len() < k {
                            best.push((d, *item, p.clone()));
                        } else if d < worst(&best) {
                            let wi = best
                                .iter()
                                .enumerate()
                                .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite"))
                                .map(|(i, _)| i)
                                .expect("non-empty");
                            best[wi] = (d, *item, p.clone());
                        }
                    }
                }
                TvNode::Inner { balls } => {
                    for (ball, child) in balls {
                        let d = (Self::prefix_dist(&ball.center, &qproj) - ball.radius).max(0.0);
                        if d <= worst(&best) {
                            queue.push(Cand(d, *child));
                        }
                    }
                }
            }
        }
        best.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite distances")
                .then(a.1.cmp(&b.1))
        });
        best.into_iter()
            .map(|(dist, item, point)| Neighbor { item, point, dist })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::brute_force_knn;
    use parsim_datagen::{DataGenerator, FourierGenerator, UniformGenerator};

    fn items(dim: usize, n: usize, seed: u64) -> Vec<(Point, u64)> {
        UniformGenerator::new(dim)
            .generate(n, seed)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect()
    }

    #[test]
    fn knn_is_exact_for_any_alpha() {
        let dim = 8;
        let data = items(dim, 1200, 1);
        for alpha in [1usize, 3, 8] {
            let tree = TvTree::build(data.clone(), alpha, 16);
            assert_eq!(tree.len(), 1200);
            for q in UniformGenerator::new(dim).generate(8, 2) {
                let got = tree.knn(&q, 7);
                let want = brute_force_knn(&data, &q, 7);
                for (g, w) in got.iter().zip(want.iter()) {
                    assert!((g.dist - w.dist).abs() < 1e-12, "alpha = {alpha}");
                }
            }
        }
    }

    #[test]
    fn telescope_prunes_on_energy_concentrated_data() {
        // Fourier descriptors concentrate energy in the low harmonics;
        // with alpha = 4 of 16 dimensions the TV search over Fourier data
        // (with a data-distributed query, as in similarity retrieval) must
        // visit a far smaller fraction of its nodes than the same search
        // over uniform data, where the prefix carries only 4/16 of the
        // distance.
        let dim = 16;
        let n = 4000;
        let visited_fraction = |mut data: Vec<(Point, u64)>| -> f64 {
            let (q, _) = data.pop().expect("non-empty");
            let total = data.len() as f64;
            let disk = Arc::new(SimDisk::new(0));
            let tree = TvTree::build(data, 4, 16).with_disk(Arc::clone(&disk));
            tree.knn(&q, 10);
            // Nodes visited relative to leaf count (~ total/capacity).
            disk.read_count() as f64 / (total / 16.0)
        };
        let fourier: Vec<(Point, u64)> = FourierGenerator::new(dim)
            .generate(n + 1, 3)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let uniform = items(dim, n + 1, 3);
        let f = visited_fraction(fourier);
        let u = visited_fraction(uniform);
        assert!(
            f * 2.0 < u,
            "fourier visited {f:.2}x leaves, uniform {u:.2}x"
        );
    }

    #[test]
    fn duplicates_and_small_sets() {
        let p = Point::new(vec![0.4; 5]).unwrap();
        let data: Vec<(Point, u64)> = (0..40).map(|i| (p.clone(), i)).collect();
        let tree = TvTree::build(data, 2, 4);
        let res = tree.knn(&p, 6);
        assert_eq!(res.len(), 6);
        assert!(res.iter().all(|nb| nb.dist == 0.0));
        assert!(tree.knn(&p, 0).is_empty());
    }

    #[test]
    fn alpha_is_capped_to_dim() {
        let data = items(3, 50, 4);
        let tree = TvTree::build(data, 99, 8);
        assert_eq!(tree.alpha(), 3);
    }

    #[test]
    fn k_exceeding_n_returns_all() {
        let data = items(4, 9, 5);
        let tree = TvTree::build(data, 2, 4);
        let q = Point::new(vec![0.5; 4]).unwrap();
        assert_eq!(tree.knn(&q, 50).len(), 9);
    }
}
