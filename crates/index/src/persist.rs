//! Tree persistence onto simulated disks.
//!
//! Everything else in the workspace *accounts* page I/O; this module
//! actually performs it: a [`SpatialTree`] is serialized node-by-node into
//! 4 KB pages of a [`SimDisk`] (children before parents, so directory
//! entries can reference their children's page ids) and loaded back,
//! reconstructing an equivalent tree. The encoding is a fixed
//! little-endian layout with no external dependencies, and the round trip
//! doubles as a check that the page-capacity assumptions of
//! [`TreeParams::for_dim`] hold for real byte layouts.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! meta block:  tag=2 u8 | dim u16 | height u32 | len u64 | root u64
//!              | leaf_cap u32 | inner_cap u32 | variant u8 | max_overlap f64
//! leaf block:  tag=0 u8 | count u16 | { item u64, coord f64 × dim } × count
//! inner block: tag=1 u8 | count u16 | split_dims u64
//!              | { child_page u64, lo f64 × dim, hi f64 × dim } × count
//! ```
//!
//! A node needing more than one page (X-tree supernodes, or a block whose
//! header pushes it just past a page boundary) occupies consecutive pages
//! on the disk.

use std::sync::Arc;

use bytes::Bytes;
use parsim_geometry::{HyperRect, Point};
use parsim_storage::{PageId, SimDisk, PAGE_SIZE};

use crate::node::{InnerEntry, LeafEntries, LeafEntry, Node, NodeId};
use crate::params::{TreeParams, TreeVariant};
use crate::tree::SpatialTree;
use crate::IndexError;

const TAG_LEAF: u8 = 0;
const TAG_INNER: u8 = 1;
const TAG_META: u8 = 2;

/// Handle to a tree persisted on a disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistedTree {
    /// First page of the meta block.
    pub meta: PageId,
}

/// Errors of the persistence layer.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// The underlying simulated disk failed.
    Storage(String),
    /// The bytes on disk do not decode to a valid tree.
    Corrupt(&'static str),
    /// The decoded tree violates an invariant.
    Index(IndexError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Storage(e) => write!(f, "storage error: {e}"),
            PersistError::Corrupt(what) => write!(f, "corrupt page data: {what}"),
            PersistError::Index(e) => write!(f, "index error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

// ----- primitive writers/readers -------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.pos + n > self.buf.len() {
            return Err(PersistError::Corrupt("truncated block"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

/// Writes `bytes` as one block of consecutive pages; returns the first
/// page id.
fn write_block(disk: &SimDisk, bytes: &[u8]) -> Result<PageId, PersistError> {
    let mut first = None;
    if bytes.is_empty() {
        let id = disk
            .allocate(Bytes::new())
            .map_err(|e| PersistError::Storage(e.to_string()))?;
        return Ok(id);
    }
    for chunk in bytes.chunks(PAGE_SIZE) {
        let id = disk
            .allocate(Bytes::copy_from_slice(chunk))
            .map_err(|e| PersistError::Storage(e.to_string()))?;
        if first.is_none() {
            first = Some(id);
        }
    }
    Ok(first.expect("at least one chunk"))
}

/// Reads a block of `pages` consecutive pages starting at `first`.
fn read_block(disk: &SimDisk, first: PageId, pages: u64) -> Result<Vec<u8>, PersistError> {
    let mut out = Vec::with_capacity(pages as usize * PAGE_SIZE);
    for i in 0..pages {
        let page = disk
            .read(PageId(first.0 + i))
            .map_err(|e| PersistError::Storage(e.to_string()))?;
        out.extend_from_slice(&page);
    }
    Ok(out)
}

// ----- public API -----------------------------------------------------------

impl SpatialTree {
    /// Serializes the tree onto `disk`, children before parents, followed
    /// by a meta block. Returns the handle needed by
    /// [`SpatialTree::load`].
    pub fn persist(&self, disk: &Arc<SimDisk>) -> Result<PersistedTree, PersistError> {
        let dim = self.params().dim;
        // Post-order write so parents know their children's page ids.
        let root_page = self.persist_node(disk, self.root_id(), dim)?;

        let mut w = Writer::new();
        w.u8(TAG_META);
        w.u16(dim as u16);
        w.u32(self.height() as u32);
        w.u64(self.len() as u64);
        w.u64(root_page.0);
        w.u32(self.params().leaf_capacity as u32);
        w.u32(self.params().inner_capacity as u32);
        match self.params().variant {
            TreeVariant::RStar => {
                w.u8(0);
                w.f64(0.0);
            }
            TreeVariant::XTree { max_overlap } => {
                w.u8(1);
                w.f64(max_overlap);
            }
        }
        let meta = write_block(disk, &w.buf)?;
        Ok(PersistedTree { meta })
    }

    fn persist_node(
        &self,
        disk: &Arc<SimDisk>,
        id: NodeId,
        dim: usize,
    ) -> Result<PageId, PersistError> {
        match self.node(id) {
            Node::Leaf { entries, .. } => {
                let mut w = Writer::new();
                w.u8(TAG_LEAF);
                w.u16(entries.len() as u16);
                for (row, item) in entries.iter() {
                    w.u64(item);
                    for &c in row {
                        w.f64(c);
                    }
                }
                write_block(disk, &w.buf)
            }
            Node::Inner {
                entries,
                split_dims,
                ..
            } => {
                // Children first.
                let mut child_pages = Vec::with_capacity(entries.len());
                for e in entries {
                    child_pages.push(self.persist_node(disk, e.child, dim)?);
                }
                let mut w = Writer::new();
                w.u8(TAG_INNER);
                w.u16(entries.len() as u16);
                w.u64(*split_dims);
                for (e, page) in entries.iter().zip(&child_pages) {
                    w.u64(page.0);
                    for i in 0..dim {
                        w.f64(e.mbr.lo(i));
                    }
                    for i in 0..dim {
                        w.f64(e.mbr.hi(i));
                    }
                }
                write_block(disk, &w.buf)
            }
        }
    }

    /// Loads a persisted tree back from `disk`. The loaded tree has no
    /// sink attached; attach one with [`SpatialTree::with_disk`] /
    /// [`SpatialTree::with_sink`] as usual.
    pub fn load(disk: &Arc<SimDisk>, handle: PersistedTree) -> Result<SpatialTree, PersistError> {
        let meta_bytes = read_block(disk, handle.meta, 1)?;
        let mut r = Reader::new(&meta_bytes);
        if r.u8()? != TAG_META {
            return Err(PersistError::Corrupt("expected meta tag"));
        }
        let dim = r.u16()? as usize;
        let height = r.u32()? as usize;
        let len = r.u64()? as usize;
        let root_page = PageId(r.u64()?);
        let leaf_capacity = r.u32()? as usize;
        let inner_capacity = r.u32()? as usize;
        let variant = match r.u8()? {
            0 => {
                let _ = r.f64()?;
                TreeVariant::RStar
            }
            1 => TreeVariant::XTree {
                max_overlap: r.f64()?,
            },
            _ => return Err(PersistError::Corrupt("unknown variant tag")),
        };
        let params = TreeParams::for_dim(dim, variant)
            .and_then(|p| p.with_capacities(leaf_capacity, inner_capacity))
            .map_err(PersistError::Index)?;

        let mut tree = SpatialTree::new(params);
        let root = load_node(
            disk,
            root_page,
            dim,
            leaf_capacity,
            inner_capacity,
            &mut tree,
        )?;
        // Replace the bootstrap empty leaf with the loaded root.
        tree.nodes[tree.root.0 as usize] = None;
        tree.free.push(tree.root);
        tree.root = root;
        tree.height = height;
        tree.len = len;
        Ok(tree)
    }
}

fn load_node(
    disk: &Arc<SimDisk>,
    page: PageId,
    dim: usize,
    leaf_capacity: usize,
    inner_capacity: usize,
    tree: &mut SpatialTree,
) -> Result<NodeId, PersistError> {
    // Read the first page to learn the entry count, then the rest of the
    // block if the node spans several pages.
    let head = read_block(disk, page, 1)?;
    let mut r = Reader::new(&head);
    let tag = r.u8()?;
    match tag {
        TAG_LEAF => {
            let count = r.u16()? as usize;
            let bytes_needed = 3 + count * (8 + 8 * dim);
            let block = if bytes_needed > head.len() {
                read_block(disk, page, bytes_needed.div_ceil(PAGE_SIZE) as u64)?
            } else {
                head
            };
            let mut r = Reader::new(&block);
            let _ = r.u8()?;
            let _ = r.u16()?;
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let item = r.u64()?;
                let mut coords = Vec::with_capacity(dim);
                for _ in 0..dim {
                    coords.push(r.f64()?);
                }
                entries.push(LeafEntry {
                    point: Point::new(coords)
                        .map_err(|_| PersistError::Corrupt("non-finite coordinate"))?,
                    item,
                });
            }
            let pages = entries.len().div_ceil(leaf_capacity).max(1) as u32;
            Ok(tree.alloc(Node::Leaf {
                entries: LeafEntries::from_entries(dim, entries),
                pages,
            }))
        }
        TAG_INNER => {
            let count = r.u16()? as usize;
            let bytes_needed = 11 + count * (8 + 16 * dim);
            let block = if bytes_needed > head.len() {
                read_block(disk, page, bytes_needed.div_ceil(PAGE_SIZE) as u64)?
            } else {
                head
            };
            let mut r = Reader::new(&block);
            let _ = r.u8()?;
            let _ = r.u16()?;
            let split_dims = r.u64()?;
            let mut raw = Vec::with_capacity(count);
            for _ in 0..count {
                let child_page = PageId(r.u64()?);
                let mut lo = Vec::with_capacity(dim);
                for _ in 0..dim {
                    lo.push(r.f64()?);
                }
                let mut hi = Vec::with_capacity(dim);
                for _ in 0..dim {
                    hi.push(r.f64()?);
                }
                let mbr = HyperRect::new(lo, hi)
                    .map_err(|_| PersistError::Corrupt("invalid MBR bounds"))?;
                raw.push((child_page, mbr));
            }
            let mut entries = Vec::with_capacity(count);
            for (child_page, mbr) in raw {
                let child = load_node(disk, child_page, dim, leaf_capacity, inner_capacity, tree)?;
                entries.push(InnerEntry { mbr, child });
            }
            let pages = entries.len().div_ceil(inner_capacity).max(1) as u32;
            Ok(tree.alloc(Node::Inner {
                entries,
                pages,
                split_dims,
            }))
        }
        _ => Err(PersistError::Corrupt("unknown node tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{brute_force_knn, KnnAlgorithm};
    use parsim_datagen::{DataGenerator, UniformGenerator};

    fn items(dim: usize, n: usize, seed: u64) -> Vec<(Point, u64)> {
        UniformGenerator::new(dim)
            .generate(n, seed)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect()
    }

    #[test]
    fn round_trip_preserves_queries() {
        for dim in [3usize, 8, 16] {
            let data = items(dim, 1500, 1);
            let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
            let tree = SpatialTree::bulk_load(params, data.clone()).unwrap();
            let disk = Arc::new(SimDisk::new(0));
            let handle = tree.persist(&disk).unwrap();
            let loaded = SpatialTree::load(&disk, handle).unwrap();

            assert_eq!(loaded.len(), tree.len());
            assert_eq!(loaded.height(), tree.height());
            loaded.validate();

            let q = UniformGenerator::new(dim).generate(1, 2).pop().unwrap();
            let want = brute_force_knn(&data, &q, 10);
            let got = loaded.knn(&q, 10, KnnAlgorithm::Rkv);
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g.dist - w.dist).abs() < 1e-12, "dim = {dim}");
            }
        }
    }

    #[test]
    fn round_trip_after_insert_heavy_build() {
        // Insertion-built X-trees can contain supernodes; persistence must
        // carry them.
        let dim = 14;
        let data = items(dim, 2500, 3);
        let params = TreeParams::for_dim(dim, TreeVariant::xtree_default())
            .unwrap()
            .with_capacities(8, 8)
            .unwrap();
        let mut tree = SpatialTree::new(params);
        for (p, id) in &data {
            tree.insert(p.clone(), *id).unwrap();
        }
        assert!(tree.supernode_extra_pages() > 0, "want supernodes");
        let disk = Arc::new(SimDisk::new(0));
        let handle = tree.persist(&disk).unwrap();
        let loaded = SpatialTree::load(&disk, handle).unwrap();
        loaded.validate();
        assert_eq!(loaded.len(), 2500);
        // Loaded supernodes keep multi-page blocks.
        assert!(loaded.supernode_extra_pages() > 0);
    }

    #[test]
    fn persisted_size_matches_page_budget() {
        // The on-disk footprint must be close to the nominal page count of
        // the tree (headers can add at most one page per node).
        let dim = 8;
        let data = items(dim, 4000, 4);
        let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
        let tree = SpatialTree::bulk_load(params, data).unwrap();
        let nominal: u64 = tree.iter_nodes().map(|n| n.pages() as u64).sum();
        let disk = Arc::new(SimDisk::new(0));
        tree.persist(&disk).unwrap();
        let on_disk = disk.page_count() - 1; // minus the meta block
        let node_count = tree.iter_nodes().count() as u64;
        assert!(
            on_disk <= nominal + node_count,
            "on-disk {on_disk} vs nominal {nominal} (+{node_count} header slack)"
        );
        assert!(on_disk >= nominal, "on-disk {on_disk} < nominal {nominal}");
    }

    #[test]
    fn empty_tree_round_trips() {
        let params = TreeParams::for_dim(4, TreeVariant::RStar).unwrap();
        let tree = SpatialTree::new(params);
        let disk = Arc::new(SimDisk::new(0));
        let handle = tree.persist(&disk).unwrap();
        let loaded = SpatialTree::load(&disk, handle).unwrap();
        assert!(loaded.is_empty());
        loaded.validate();
    }

    #[test]
    fn corrupt_meta_is_rejected() {
        let disk = Arc::new(SimDisk::new(0));
        let page = disk.allocate(Bytes::from_static(&[9u8; 16])).unwrap();
        match SpatialTree::load(&disk, PersistedTree { meta: page }) {
            Err(PersistError::Corrupt(_)) => {}
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("corrupt meta must not load"),
        }
    }

    #[test]
    fn loading_charges_reads() {
        let dim = 6;
        let data = items(dim, 800, 5);
        let params = TreeParams::for_dim(dim, TreeVariant::RStar).unwrap();
        let tree = SpatialTree::bulk_load(params, data).unwrap();
        let disk = Arc::new(SimDisk::new(0));
        let handle = tree.persist(&disk).unwrap();
        let reads_before = disk.read_count();
        let _ = SpatialTree::load(&disk, handle).unwrap();
        assert!(disk.read_count() > reads_before, "load must read pages");
    }
}
