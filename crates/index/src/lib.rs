//! High-dimensional spatial indexes over simulated paged storage.
//!
//! The paper runs its parallel nearest-neighbor search on the **X-tree**
//! \[BKK 96\], an R\*-tree-based index that avoids directory degeneration
//! in high dimensions through an overlap-minimal split algorithm and
//! variable-sized directory nodes (*supernodes*). This crate implements
//!
//! * the full **R\*-tree** \[BKSS 90\] (least-overlap subtree choice,
//!   forced reinsertion, margin/overlap-driven split) as the baseline,
//! * the **X-tree** on top of it (split-history-guided overlap-free
//!   directory splits with supernode fallback),
//! * both classical k-NN algorithms: **RKV** (Roussopoulos et al., DFS
//!   branch-and-bound with MINDIST/MINMAXDIST pruning) and **HS**
//!   (Hjaltason & Samet, best-first incremental search),
//! * window and sphere **range queries**, deletion with tree condensation,
//!   and a Hilbert-sort **bulk loader**.
//!
//! Every node visit charges page reads to an optional
//! [`parsim_storage::SimDisk`], which is how the parallel engine measures
//! the paper's cost metric (pages read on the most-loaded disk). A
//! supernode of `p` pages charges `p` reads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bulk;
pub mod caching;
pub mod coalesce;
pub mod costmodel;
pub mod graphnn;
pub mod gridfile;
pub mod incremental;
pub mod kdtree;
pub mod knn;
pub mod lsh;
pub mod metric_search;
pub mod node;
pub mod params;
pub mod persist;
pub mod range;
pub mod stats;
pub mod tree;
pub mod tvtree;

pub use caching::{CachingSink, DEFAULT_CACHE_SHARDS};
pub use coalesce::CoalescingSink;
pub use costmodel::{predict_leaf_accesses, CostPrediction};
pub use graphnn::GraphIndex;
pub use gridfile::GridFile;
pub use incremental::{incremental_forest, NnIterator};
pub use kdtree::KdTree;
pub use knn::{
    forest_itinerary, forest_knn, forest_knn_traced, forest_knn_traced_ordered,
    forest_knn_traced_tiered, ForestCursor, KnnAlgorithm, LeafScanner, Neighbor, ScanTier,
    SearchStats, SharedBound,
};
pub use lsh::{LshConfig, LshTables};
pub use node::energy_permutation;
pub use params::{ScanOrder, TreeParams, TreeVariant};
pub use persist::{PersistError, PersistedTree};
pub use stats::TreeStats;
pub use tree::{DiskSink, NodeSink, SpatialTree, VisitOutcome};
pub use tvtree::TvTree;

/// Errors produced by the index.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexError {
    /// A point of the wrong dimensionality was offered to the tree.
    DimensionMismatch {
        /// The tree's dimensionality.
        expected: usize,
        /// The point's dimensionality.
        got: usize,
    },
    /// The tree was constructed with unusable parameters.
    BadParams(String),
    /// A delete targeted a point that is not in the tree.
    NotFound,
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: tree is {expected}-d, point is {got}-d"
                )
            }
            IndexError::BadParams(msg) => write!(f, "bad tree parameters: {msg}"),
            IndexError::NotFound => write!(f, "point not found"),
        }
    }
}

impl std::error::Error for IndexError {}
