//! Hilbert-sort bulk loading.
//!
//! Building a large tree by repeated insertion is `O(n log n)` page
//! touches with large constants (reinserts, splits). For experiment setup
//! we bulk load instead: points are sorted by their position on a
//! fine-grained d-dimensional Hilbert curve, packed into leaves at a
//! target fill, and the directory is built bottom-up. Hilbert ordering
//! keeps spatially close points in the same leaf, giving query performance
//! close to an insertion-built R\*-tree at a fraction of the build cost.

use parsim_geometry::Point;
use parsim_hilbert::HilbertCurve;

use crate::node::{InnerEntry, LeafEntries, LeafEntry, Node, NodeId};
use crate::params::TreeParams;
use crate::tree::SpatialTree;
use crate::IndexError;

/// Fraction of node capacity filled by the bulk loader. Less than 1.0 so
/// subsequent inserts do not immediately split every node.
const BULK_FILL: f64 = 0.75;

impl SpatialTree {
    /// Builds a tree from `items` in one pass (Hilbert-sort packing).
    pub fn bulk_load(
        params: TreeParams,
        items: Vec<(Point, u64)>,
    ) -> Result<SpatialTree, IndexError> {
        let (tree, _) = Self::bulk_load_grouped(params, vec![items])?;
        Ok(tree)
    }

    /// Builds a tree whose leaves respect group boundaries: each group's
    /// items are packed into leaves of their own (groups smaller than the
    /// leaf minimum are merged with the following group), so a group —
    /// e.g. a declustering bucket — maps onto whole leaf pages. Returns
    /// the tree and, per group, the ids of the leaves holding its items
    /// (a leaf merged from several tiny groups is attributed to the group
    /// of its first item).
    pub fn bulk_load_grouped(
        params: TreeParams,
        groups: Vec<Vec<(Point, u64)>>,
    ) -> Result<(SpatialTree, Vec<Vec<NodeId>>), IndexError> {
        for group in &groups {
            for (p, _) in group {
                if p.dim() != params.dim {
                    return Err(IndexError::DimensionMismatch {
                        expected: params.dim,
                        got: p.dim(),
                    });
                }
            }
        }
        let mut tree = SpatialTree::new(params);
        let group_count = groups.len();
        let n: usize = groups.iter().map(Vec::len).sum();
        tree.len = n;
        if n == 0 {
            return Ok((tree, vec![Vec::new(); group_count]));
        }

        // Sort each group along the Hilbert curve for spatial locality.
        let order = (128 / params.dim as u32).clamp(1, 16);
        let curve =
            HilbertCurve::new(params.dim, order).expect("order chosen to satisfy the bit budget");
        let side = curve.side() as f64;
        let key = |p: &Point| -> u128 {
            let coords: Vec<u64> = p
                .iter()
                .map(|&c| ((c.clamp(0.0, 1.0) * side) as u64).min(curve.side() - 1))
                .collect();
            curve.encode(&coords)
        };

        // Build "runs" of leaf entries: one run per group, except that
        // groups too small to fill a minimal leaf are merged forward.
        let leaf_min = tree.params.leaf_min();
        let mut runs: Vec<(usize, Vec<LeafEntry>)> = Vec::new(); // (first group, entries)
        let mut pending: Vec<LeafEntry> = Vec::new();
        let mut pending_group = 0usize;
        for (gi, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut sorted: Vec<(u128, Point, u64)> = group
                .into_iter()
                .map(|(p, item)| (key(&p), p, item))
                .collect();
            sorted.sort_by_key(|(key, _, _)| *key);
            if pending.is_empty() {
                pending_group = gi;
            }
            pending.extend(
                sorted
                    .into_iter()
                    .map(|(_, point, item)| LeafEntry { point, item }),
            );
            if pending.len() >= leaf_min {
                runs.push((pending_group, std::mem::take(&mut pending)));
            }
        }
        if !pending.is_empty() {
            match runs.last_mut() {
                Some((_, last)) => last.append(&mut pending),
                None => runs.push((pending_group, std::mem::take(&mut pending))),
            }
        }

        // Pack each run into leaves; chunk sizes are distributed evenly so
        // no node violates the min-fill invariant.
        let leaf_target = ((tree.params.leaf_capacity as f64 * BULK_FILL) as usize).max(1);
        let mut level: Vec<InnerEntry> = Vec::new();
        let mut group_leaves: Vec<Vec<NodeId>> = vec![Vec::new(); group_count];
        for (gi, run) in runs {
            let sizes = even_chunks(run.len(), leaf_min, leaf_target, tree.params.leaf_capacity);
            let mut iter = run.into_iter();
            for size in sizes {
                let chunk: Vec<LeafEntry> = iter.by_ref().take(size).collect();
                let node = Node::Leaf {
                    entries: LeafEntries::from_entries_ordered(
                        tree.params.dim,
                        tree.params.scan_order,
                        chunk,
                    ),
                    pages: 1,
                };
                let mbr = node.mbr().expect("chunk is non-empty");
                let id = tree.alloc(node);
                group_leaves[gi].push(id);
                level.push(InnerEntry { mbr, child: id });
            }
        }

        // Build the directory bottom-up.
        let mut height = 1usize;
        while level.len() > 1 {
            let sizes = even_chunks(
                level.len(),
                tree.params.inner_min(),
                ((tree.params.inner_capacity as f64 * BULK_FILL) as usize).max(2),
                tree.params.inner_capacity,
            );
            let mut next: Vec<InnerEntry> = Vec::with_capacity(sizes.len());
            let mut iter = level.into_iter();
            for size in sizes {
                let chunk: Vec<InnerEntry> = iter.by_ref().take(size).collect();
                let node = Node::Inner {
                    entries: chunk,
                    pages: 1,
                    split_dims: 0,
                };
                let mbr = node.mbr().expect("chunk is non-empty");
                let id = tree.alloc(node);
                next.push(InnerEntry { mbr, child: id });
            }
            level = next;
            height += 1;
        }

        // Install the root: the single remaining entry's child replaces the
        // empty bootstrap leaf.
        let top = level.pop().expect("at least one node");
        tree.nodes[tree.root.0 as usize] = None;
        tree.free.push(tree.root);
        tree.root = top.child;
        tree.height = height;
        Ok((tree, group_leaves))
    }
}

/// Splits `n` items into chunks that are as close to `target` as possible
/// while every chunk stays within `[min, capacity]`. A single chunk (which
/// becomes the root) may be smaller than `min`.
fn even_chunks(n: usize, min: usize, target: usize, capacity: usize) -> Vec<usize> {
    debug_assert!(min <= target && target <= capacity);
    if n <= target {
        return vec![n];
    }
    // Prefer the chunk count implied by the target fill, but adjust it so
    // that the even share stays within [min, capacity].
    let mut k = n.div_ceil(target);
    let min_k = n.div_ceil(capacity); // fewest chunks that still fit
    let max_k = (n / min.max(1)).max(1); // most chunks that respect min
    k = k.clamp(min_k, max_k.max(min_k));
    let base = n / k;
    let extra = n % k;
    (0..k)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{brute_force_knn, KnnAlgorithm};
    use crate::params::TreeVariant;
    use parsim_datagen::{DataGenerator, UniformGenerator};

    fn items(dim: usize, n: usize, seed: u64) -> Vec<(Point, u64)> {
        UniformGenerator::new(dim)
            .generate(n, seed)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect()
    }

    #[test]
    fn bulk_load_validates() {
        let params = TreeParams::for_dim(6, TreeVariant::xtree_default()).unwrap();
        let tree = SpatialTree::bulk_load(params, items(6, 5000, 1)).unwrap();
        assert_eq!(tree.len(), 5000);
        tree.validate();
    }

    #[test]
    fn bulk_load_empty_and_single() {
        let params = TreeParams::for_dim(3, TreeVariant::RStar).unwrap();
        let tree = SpatialTree::bulk_load(params, vec![]).unwrap();
        assert!(tree.is_empty());
        tree.validate();

        let params = TreeParams::for_dim(3, TreeVariant::RStar).unwrap();
        let one = items(3, 1, 2);
        let tree = SpatialTree::bulk_load(params, one).unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
        tree.validate();
    }

    #[test]
    fn bulk_loaded_tree_answers_knn_exactly() {
        let data = items(8, 2000, 3);
        let params = TreeParams::for_dim(8, TreeVariant::xtree_default()).unwrap();
        let tree = SpatialTree::bulk_load(params, data.clone()).unwrap();
        for q in UniformGenerator::new(8).generate(15, 99) {
            let got = tree.knn(&q, 10, KnnAlgorithm::Hs);
            let want = brute_force_knn(&data, &q, 10);
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g.dist - w.dist).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bulk_load_supports_subsequent_inserts_and_deletes() {
        let data = items(4, 1000, 4);
        let params = TreeParams::for_dim(4, TreeVariant::RStar).unwrap();
        let mut tree = SpatialTree::bulk_load(params, data.clone()).unwrap();
        let extra = UniformGenerator::new(4).generate(200, 5);
        for (i, p) in extra.iter().enumerate() {
            tree.insert(p.clone(), 10_000 + i as u64).unwrap();
        }
        assert_eq!(tree.len(), 1200);
        tree.validate();
        for (p, id) in data.iter().take(100) {
            tree.delete(p, *id).unwrap();
        }
        assert_eq!(tree.len(), 1100);
        tree.validate();
    }

    #[test]
    fn bulk_load_rejects_mixed_dimensions() {
        let params = TreeParams::for_dim(3, TreeVariant::RStar).unwrap();
        let bad = vec![(Point::new(vec![0.1, 0.2]).unwrap(), 0)];
        assert!(matches!(
            SpatialTree::bulk_load(params, bad),
            Err(IndexError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn hilbert_packing_gives_local_leaves() {
        // Bulk-loaded leaves should have much smaller average volume than
        // random groupings — a proxy for good packing quality.
        let data = items(2, 4000, 6);
        let params = TreeParams::for_dim(2, TreeVariant::RStar).unwrap();
        let tree = SpatialTree::bulk_load(params, data).unwrap();
        let stats = tree.stats();
        assert!(stats.leaf_fill > 0.6, "fill {}", stats.leaf_fill);
        // Average leaf MBR area must be near the ideal n_leaf/Nth of the
        // space; allow generous slack.
        let mut total_area = 0.0;
        let mut leaves = 0usize;
        for node in tree.iter_nodes() {
            if node.is_leaf() {
                if let Some(mbr) = node.mbr() {
                    total_area += mbr.volume();
                    leaves += 1;
                }
            }
        }
        let avg = total_area / leaves as f64;
        assert!(
            avg < 4.0 / leaves as f64,
            "avg leaf area {avg} vs {}",
            1.0 / leaves as f64
        );
    }
}
