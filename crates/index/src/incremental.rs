//! Incremental (distance-browsing) nearest-neighbor search.
//!
//! The real strength of the Hjaltason/Samet algorithm \[HS 95\] is that it
//! does not need `k` in advance: neighbors can be *browsed* in increasing
//! distance order, stopping whenever the consumer has seen enough — e.g.
//! "give me similar images until the user stops scrolling". The iterator
//! maintains the global priority queue lazily; asking for `k` results
//! costs exactly the same page accesses as a k-NN query, and asking for
//! one more neighbor resumes where the search stopped.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use parsim_geometry::{kernel, Point};

use crate::knn::Neighbor;
use crate::node::{Node, NodeId};
use crate::tree::SpatialTree;

/// A lazy stream of neighbors in ascending distance order.
///
/// Created by [`SpatialTree::nn_iter`] (single tree) or
/// [`incremental_forest`] (several trees with a shared queue). Implements
/// [`Iterator`]; each `next()` pops the queue until the closest pending
/// entry is a data point, charging page visits along the way.
pub struct NnIterator<'a> {
    trees: Vec<&'a SpatialTree>,
    queue: BinaryHeap<Entry>,
    query: Point,
    yielded: usize,
}

struct Entry {
    dist2: f64,
    kind: Kind,
}

enum Kind {
    Node(usize, NodeId),
    Point(usize, NodeId, usize),
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.dist2 == other.dist2
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance; points surface before nodes on ties.
        other.dist2.total_cmp(&self.dist2).then_with(|| {
            let rank = |k: &Kind| match k {
                Kind::Point(..) => 0,
                Kind::Node(..) => 1,
            };
            rank(&other.kind).cmp(&rank(&self.kind))
        })
    }
}

impl SpatialTree {
    /// Starts an incremental nearest-neighbor scan from `query`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn nn_iter(&self, query: &Point) -> NnIterator<'_> {
        incremental_forest(vec![self], query)
    }
}

/// Starts an incremental scan over several trees with one shared queue —
/// the browsing form of the parallel search.
pub fn incremental_forest<'a>(trees: Vec<&'a SpatialTree>, query: &Point) -> NnIterator<'a> {
    for t in &trees {
        assert_eq!(t.params().dim, query.dim(), "query dimension mismatch");
    }
    let mut queue = BinaryHeap::new();
    for (ti, tree) in trees.iter().enumerate() {
        if !tree.is_empty() {
            let d = tree
                .bounds()
                .map(|b| b.min_dist2(query))
                .unwrap_or(f64::INFINITY);
            queue.push(Entry {
                dist2: d,
                kind: Kind::Node(ti, tree.root_id()),
            });
        }
    }
    NnIterator {
        trees,
        queue,
        query: query.clone(),
        yielded: 0,
    }
}

impl NnIterator<'_> {
    /// Number of neighbors produced so far.
    pub fn yielded(&self) -> usize {
        self.yielded
    }

    /// A lower bound on the distance of the *next* neighbor, without
    /// advancing the iterator — useful for "stop when the next match is
    /// worse than ε" loops.
    pub fn next_distance_bound(&self) -> Option<f64> {
        self.queue.peek().map(|e| e.dist2.sqrt())
    }
}

impl Iterator for NnIterator<'_> {
    type Item = Neighbor;

    fn next(&mut self) -> Option<Neighbor> {
        while let Some(entry) = self.queue.pop() {
            match entry.kind {
                Kind::Node(ti, id) => {
                    let tree = self.trees[ti];
                    tree.charge_visit(id);
                    match tree.node(id) {
                        Node::Leaf { entries, .. } => {
                            for (i, (row, _)) in entries.iter().enumerate() {
                                self.queue.push(Entry {
                                    dist2: kernel::dist2(self.query.coords(), row),
                                    kind: Kind::Point(ti, id, i),
                                });
                            }
                        }
                        Node::Inner { entries, .. } => {
                            for e in entries {
                                self.queue.push(Entry {
                                    dist2: e.mbr.min_dist2(&self.query),
                                    kind: Kind::Node(ti, e.child),
                                });
                            }
                        }
                    }
                }
                Kind::Point(ti, leaf, idx) => {
                    if let Node::Leaf { entries, .. } = self.trees[ti].node(leaf) {
                        self.yielded += 1;
                        return Some(Neighbor {
                            item: entries.item(idx),
                            point: entries.point(idx),
                            dist: entry.dist2.sqrt(),
                        });
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{brute_force_knn, KnnAlgorithm};
    use crate::params::{TreeParams, TreeVariant};
    use parsim_datagen::{DataGenerator, UniformGenerator};

    fn build(dim: usize, n: usize, seed: u64) -> (SpatialTree, Vec<(Point, u64)>) {
        let items: Vec<(Point, u64)> = UniformGenerator::new(dim)
            .generate(n, seed)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
        let tree = SpatialTree::bulk_load(params, items.clone()).unwrap();
        (tree, items)
    }

    #[test]
    fn iterator_yields_ascending_distances() {
        let (tree, _) = build(6, 1000, 1);
        let q = Point::new(vec![0.3; 6]).unwrap();
        let dists: Vec<f64> = tree.nn_iter(&q).take(50).map(|n| n.dist).collect();
        assert_eq!(dists.len(), 50);
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn iterator_matches_knn_prefix() {
        let (tree, items) = build(5, 800, 2);
        let q = Point::new(vec![0.7, 0.1, 0.5, 0.9, 0.2]).unwrap();
        let want = brute_force_knn(&items, &q, 25);
        let got: Vec<Neighbor> = tree.nn_iter(&q).take(25).collect();
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist - w.dist).abs() < 1e-12);
        }
    }

    #[test]
    fn iterator_exhausts_to_full_dataset() {
        let (tree, items) = build(3, 200, 3);
        let q = Point::new(vec![0.5; 3]).unwrap();
        let all: Vec<Neighbor> = tree.nn_iter(&q).collect();
        assert_eq!(all.len(), items.len());
        let mut ids: Vec<u64> = all.iter().map(|n| n.item).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..items.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn distance_bound_is_a_lower_bound() {
        let (tree, _) = build(4, 500, 4);
        let q = Point::new(vec![0.1; 4]).unwrap();
        let mut it = tree.nn_iter(&q);
        for _ in 0..30 {
            let bound = it.next_distance_bound().unwrap();
            let actual = it.next().unwrap().dist;
            assert!(bound <= actual + 1e-12, "bound {bound} > actual {actual}");
        }
        assert_eq!(it.yielded(), 30);
    }

    #[test]
    fn incremental_pays_same_pages_as_knn() {
        use parsim_storage::SimDisk;
        use std::sync::Arc;
        let dim = 8;
        let items: Vec<(Point, u64)> = UniformGenerator::new(dim)
            .generate(3000, 5)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let q = Point::new(vec![0.4; dim]).unwrap();

        let pages = |use_iter: bool| -> u64 {
            let disk = Arc::new(SimDisk::new(0));
            let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
            let tree = SpatialTree::bulk_load(params, items.clone())
                .unwrap()
                .with_disk(Arc::clone(&disk));
            if use_iter {
                let _: Vec<Neighbor> = tree.nn_iter(&q).take(10).collect();
            } else {
                tree.knn(&q, 10, KnnAlgorithm::Hs);
            }
            disk.read_count()
        };
        assert_eq!(pages(true), pages(false));
    }

    #[test]
    fn forest_iterator_merges_trees() {
        let (t1, mut items) = build(4, 300, 6);
        let (_unused, items2) = build(4, 300, 7);
        items.extend(items2.iter().map(|(p, id)| (p.clone(), *id + 10_000)));
        // Rebuild t2 with shifted ids to distinguish.
        let params = TreeParams::for_dim(4, TreeVariant::xtree_default()).unwrap();
        let t2 = SpatialTree::bulk_load(
            params,
            items2.into_iter().map(|(p, id)| (p, id + 10_000)).collect(),
        )
        .unwrap();
        let q = Point::new(vec![0.6; 4]).unwrap();
        let want = brute_force_knn(&items, &q, 40);
        let got: Vec<Neighbor> = incremental_forest(vec![&t1, &t2], &q).take(40).collect();
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist - w.dist).abs() < 1e-12);
        }
    }
}
