//! The paged spatial tree: R\*-tree insertion/deletion with the X-tree
//! split extension.

use std::sync::Arc;

use parsim_geometry::{HyperRect, Point};
use parsim_storage::SimDisk;

use crate::node::{InnerEntry, LeafEntries, LeafEntry, Node, NodeId};
use crate::params::{TreeParams, TreeVariant};
use crate::IndexError;

/// How a sink served one node visit — whether the disk was physically
/// charged or the read was absorbed by a layer above it.
///
/// Searches fold the outcome into their own per-thread [`SearchStats`]
/// (`cache_hits` / `coalesced`), so the per-query accounting stays exact
/// even when many queries run against the same disks concurrently. The
/// *logical* page count of a visit is charged by the search itself
/// regardless of the outcome; only the physical disk charge is skipped.
///
/// [`SearchStats`]: crate::knn::SearchStats
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisitOutcome {
    /// The visit reached the disk and was charged to it.
    Charged,
    /// The visit was served from a page cache (no disk charged).
    CacheHit,
    /// The visit rode a physical read another in-flight query of the same
    /// submission wave already performed (no disk charged, cache
    /// untouched) — see `CoalescingSink`.
    Coalesced,
}

/// Receives every node visit performed by queries on a [`SpatialTree`].
///
/// The default sink charges a [`SimDisk`]; the parallel engine installs a
/// sink that routes each *leaf* page to the disk the declustering assigned
/// it to and counts directory pages separately (the X-tree's small
/// directory is cached in RAM in the paper's setting).
pub trait NodeSink: Send + Sync {
    /// Called once per node visit with the node's id and contents. Returns
    /// how the visit was served ([`VisitOutcome`]), so searches can count
    /// cache hits and coalesced reads into their own per-thread
    /// statistics.
    fn visit(&self, id: NodeId, node: &Node) -> VisitOutcome;
}

/// The default sink: every visited node charges its page count to one
/// simulated disk.
pub struct DiskSink(pub Arc<SimDisk>);

impl NodeSink for DiskSink {
    fn visit(&self, _id: NodeId, node: &Node) -> VisitOutcome {
        self.0.touch_read(node.pages() as u64);
        VisitOutcome::Charged
    }
}

/// A dynamic high-dimensional point index.
///
/// One `SpatialTree` lives on (at most) one simulated disk: every node
/// visited by a query charges its page count to that disk, so the parallel
/// engine can measure per-disk page accesses exactly as the paper does.
pub struct SpatialTree {
    pub(crate) params: TreeParams,
    pub(crate) nodes: Vec<Option<Node>>,
    pub(crate) free: Vec<NodeId>,
    pub(crate) root: NodeId,
    /// Height of the tree: a root-only tree has height 1.
    pub(crate) height: usize,
    pub(crate) len: usize,
    pub(crate) sink: Option<Arc<dyn NodeSink>>,
}

impl SpatialTree {
    /// Creates an empty tree.
    pub fn new(params: TreeParams) -> Self {
        let mut tree = SpatialTree {
            params,
            nodes: Vec::new(),
            free: Vec::new(),
            root: NodeId(0),
            height: 1,
            len: 0,
            sink: None,
        };
        let dim = tree.params.dim;
        tree.root = tree.alloc(Node::empty_leaf(dim));
        tree
    }

    /// Attaches a simulated disk; all subsequent node visits charge page
    /// reads to it.
    pub fn with_disk(self, disk: Arc<SimDisk>) -> Self {
        self.with_sink(Arc::new(DiskSink(disk)))
    }

    /// Attaches an arbitrary visit sink (see [`NodeSink`]).
    pub fn with_sink(mut self, sink: Arc<dyn NodeSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The tree's parameters.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = the root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// The root node id.
    pub fn root_id(&self) -> NodeId {
        self.root
    }

    /// Immutable access to a node (no I/O charge).
    pub fn node(&self, id: NodeId) -> &Node {
        self.nodes[id.0 as usize]
            .as_ref()
            .expect("dangling node id")
    }

    /// Charges the I/O cost of visiting `id` to the attached sink. Returns
    /// how the sink served the visit (charged, cached, or coalesced).
    pub fn charge_visit(&self, id: NodeId) -> VisitOutcome {
        match &self.sink {
            Some(sink) => sink.visit(id, self.node(id)),
            None => VisitOutcome::Charged,
        }
    }

    /// The bounding rectangle of all indexed points.
    pub fn bounds(&self) -> Option<HyperRect> {
        self.node(self.root).mbr()
    }

    // ----- arena ---------------------------------------------------------

    pub(crate) fn alloc(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id.0 as usize] = Some(node);
            id
        } else {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(Some(node));
            id
        }
    }

    fn dealloc(&mut self, id: NodeId) {
        self.nodes[id.0 as usize] = None;
        self.free.push(id);
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id.0 as usize]
            .as_mut()
            .expect("dangling node id")
    }

    fn capacity_of(&self, node: &Node) -> usize {
        match node {
            Node::Leaf { pages, .. } => self.params.leaf_capacity * *pages as usize,
            Node::Inner { pages, .. } => self.params.inner_capacity * *pages as usize,
        }
    }

    // ----- insertion -----------------------------------------------------

    /// Inserts a point with a caller-supplied item id.
    pub fn insert(&mut self, point: Point, item: u64) -> Result<(), IndexError> {
        if point.dim() != self.params.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.params.dim,
                got: point.dim(),
            });
        }
        self.insert_leaf_entry(LeafEntry { point, item }, true);
        self.len += 1;
        Ok(())
    }

    fn insert_leaf_entry(&mut self, entry: LeafEntry, allow_reinsert: bool) {
        // Descend to a leaf, remembering the path (parent, entry index).
        let mut path: Vec<(NodeId, usize)> = Vec::with_capacity(self.height);
        let mut current = self.root;
        let target = HyperRect::from_point(&entry.point);
        loop {
            match self.node(current) {
                Node::Leaf { .. } => break,
                Node::Inner { entries, .. } => {
                    let child_is_leaf = self.nodes[entries[0].child.0 as usize]
                        .as_ref()
                        .map(Node::is_leaf)
                        .unwrap_or(false);
                    let idx = self.choose_subtree(entries, &target, child_is_leaf);
                    path.push((current, idx));
                    current = entries[idx].child;
                }
            }
        }

        // Insert into the leaf.
        match self.node_mut(current) {
            Node::Leaf { entries, .. } => entries.push(entry),
            Node::Inner { .. } => unreachable!("descent must end at a leaf"),
        }
        self.fix_upwards(current, path, allow_reinsert);
    }

    /// R\*-tree subtree choice: least overlap enlargement when children are
    /// leaves, least volume enlargement otherwise (ties broken by volume).
    ///
    /// For wide nodes (X-tree supernodes) the overlap criterion is
    /// restricted to the 32 least-enlargement candidates, the R\*-tree
    /// paper's own near-minimum heuristic — the exact scan is O(m²) per
    /// insert and dominates build time once supernodes grow.
    fn choose_subtree(
        &self,
        entries: &[InnerEntry],
        target: &HyperRect,
        child_is_leaf: bool,
    ) -> usize {
        const OVERLAP_CANDIDATES: usize = 32;

        // Volume-growth key for every child.
        let growth: Vec<f64> = entries
            .iter()
            .map(|e| e.mbr.union(target).volume() - e.mbr.volume())
            .collect();

        if !child_is_leaf {
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for (i, e) in entries.iter().enumerate() {
                let key = (growth[i], e.mbr.volume());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            return best;
        }

        // Leaf-level: least overlap enlargement among the candidate set.
        let mut candidates: Vec<usize> = (0..entries.len()).collect();
        if candidates.len() > OVERLAP_CANDIDATES {
            candidates.sort_by(|&a, &b| growth[a].partial_cmp(&growth[b]).expect("finite volumes"));
            candidates.truncate(OVERLAP_CANDIDATES);
        }
        let mut best = candidates[0];
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for &i in &candidates {
            let e = &entries[i];
            let enlarged = e.mbr.union(target);
            // Overlap of the enlarged MBR with the siblings, minus the
            // current overlap.
            let mut before = 0.0;
            let mut after = 0.0;
            for (j, sib) in entries.iter().enumerate() {
                if i == j {
                    continue;
                }
                before += e.mbr.overlap_volume(&sib.mbr);
                after += enlarged.overlap_volume(&sib.mbr);
            }
            let key = (after - before, growth[i], e.mbr.volume());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// After an insertion into `node`, walk the recorded path upward:
    /// tighten MBRs and resolve overflows (reinsert / split / supernode).
    fn fix_upwards(&mut self, node: NodeId, path: Vec<(NodeId, usize)>, allow_reinsert: bool) {
        let mut path = path;
        let mut current = node;
        loop {
            let over = self.node(current).len() > self.capacity_of(self.node(current));
            if over {
                let is_leaf = self.node(current).is_leaf();
                if is_leaf && allow_reinsert && !path.is_empty() {
                    // R* forced reinsert (leaf level): remove the 30 % of
                    // entries farthest from the node center and re-insert
                    // them, tightening the tree before resorting to splits.
                    let removed = self.take_farthest(current);
                    self.tighten_path(&path, current);
                    for e in removed {
                        self.insert_leaf_entry(e, false);
                    }
                    return;
                }
                match self.overflow(current) {
                    OverflowOutcome::Split {
                        left,
                        right,
                        split_axis,
                    } => {
                        if let Some((parent, idx)) = path.pop() {
                            let left_mbr = self.node(left).mbr().expect("split half is non-empty");
                            let right_mbr =
                                self.node(right).mbr().expect("split half is non-empty");
                            match self.node_mut(parent) {
                                Node::Inner {
                                    entries,
                                    split_dims,
                                    ..
                                } => {
                                    entries[idx] = InnerEntry {
                                        mbr: left_mbr,
                                        child: left,
                                    };
                                    entries.push(InnerEntry {
                                        mbr: right_mbr,
                                        child: right,
                                    });
                                    *split_dims |= 1u64 << split_axis;
                                }
                                Node::Leaf { .. } => unreachable!("parent must be inner"),
                            }
                            current = parent;
                            continue;
                        } else {
                            // Root split: grow the tree by one level.
                            let left_mbr = self.node(left).mbr().expect("split half is non-empty");
                            let right_mbr =
                                self.node(right).mbr().expect("split half is non-empty");
                            let new_root = self.alloc(Node::Inner {
                                entries: vec![
                                    InnerEntry {
                                        mbr: left_mbr,
                                        child: left,
                                    },
                                    InnerEntry {
                                        mbr: right_mbr,
                                        child: right,
                                    },
                                ],
                                pages: 1,
                                split_dims: 1u64 << split_axis,
                            });
                            self.root = new_root;
                            self.height += 1;
                            return;
                        }
                    }
                    OverflowOutcome::Supernode => {
                        // The node absorbed the overflow by growing; just
                        // tighten the path.
                        self.tighten_path(&path, current);
                        return;
                    }
                }
            } else {
                self.tighten_path(&path, current);
                return;
            }
        }
    }

    /// Tightens the MBRs along a root-to-node path after `node` changed.
    fn tighten_path(&mut self, path: &[(NodeId, usize)], node: NodeId) {
        let mut child = node;
        for &(parent, idx) in path.iter().rev() {
            let mbr = self.node(child).mbr().expect("path nodes are non-empty");
            match self.node_mut(parent) {
                Node::Inner { entries, .. } => entries[idx].mbr = mbr,
                Node::Leaf { .. } => unreachable!("path nodes are inner"),
            }
            child = parent;
        }
    }

    /// Removes the `reinsert_count` leaf entries farthest from the node's
    /// MBR center, ordered nearest-first for re-insertion ("close
    /// reinsert").
    fn take_farthest(&mut self, leaf: NodeId) -> Vec<LeafEntry> {
        let center = self
            .node(leaf)
            .mbr()
            .expect("overflowing leaf is non-empty")
            .center();
        let count = self.params.reinsert_count();
        let dim = self.params.dim;
        let order = self.params.scan_order;
        match self.node_mut(leaf) {
            Node::Leaf { entries, .. } => {
                let mut all = entries.take_all();
                all.sort_by(|a, b| a.point.dist2(&center).total_cmp(&b.point.dist2(&center)));
                let keep = all.len().saturating_sub(count);
                let removed = all.split_off(keep);
                *entries = LeafEntries::from_entries_ordered(dim, order, all);
                removed
            }
            Node::Inner { .. } => unreachable!("reinsert only at leaves"),
        }
    }

    // ----- splits --------------------------------------------------------

    fn overflow(&mut self, node: NodeId) -> OverflowOutcome {
        if self.node(node).is_leaf() {
            let (left, right, axis) = self.split_leaf(node);
            OverflowOutcome::Split {
                left,
                right,
                split_axis: axis,
            }
        } else {
            self.split_inner(node)
        }
    }

    /// R\*-tree leaf split: choose the axis minimizing the margin sum over
    /// all min-fill-respecting distributions, then the distribution with
    /// least overlap (ties: least combined volume).
    fn split_leaf(&mut self, node: NodeId) -> (NodeId, NodeId, usize) {
        let min = self.params.leaf_min().max(1);
        let mut entries = match self.node_mut(node) {
            Node::Leaf { entries, .. } => entries.take_all(),
            Node::Inner { .. } => unreachable!(),
        };
        let dim = self.params.dim;
        let n = entries.len();
        debug_assert!(n >= 2 * min, "not enough entries to split");

        // Choose the split axis by minimum margin sum. Prefix/suffix MBR
        // arrays make each axis O(n) instead of O(n^2) — essential when an
        // oversized node (e.g. after supernode growth) finally splits.
        let mut best_axis = 0;
        let mut best_margin = f64::INFINITY;
        for axis in 0..dim {
            entries.sort_by(|a, b| {
                a.point[axis]
                    .partial_cmp(&b.point[axis])
                    .expect("finite coordinates")
            });
            let (prefix, suffix) = point_prefix_suffix_mbrs(&entries);
            let margin: f64 = distributions(n, min)
                .map(|k| prefix[k - 1].margin() + suffix[k].margin())
                .sum();
            if margin < best_margin {
                best_margin = margin;
                best_axis = axis;
            }
        }

        // Choose the distribution on the best axis by minimum overlap.
        entries.sort_by(|a, b| {
            a.point[best_axis]
                .partial_cmp(&b.point[best_axis])
                .expect("finite coordinates")
        });
        let (prefix, suffix) = point_prefix_suffix_mbrs(&entries);
        let mut best_k = min;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for k in distributions(n, min) {
            let m1 = &prefix[k - 1];
            let m2 = &suffix[k];
            let key = (m1.overlap_volume(m2), m1.volume() + m2.volume());
            if key < best_key {
                best_key = key;
                best_k = k;
            }
        }

        let right_entries = entries.split_off(best_k);
        let order = self.params.scan_order;
        *self.node_mut(node) = Node::Leaf {
            entries: LeafEntries::from_entries_ordered(dim, order, entries),
            pages: 1,
        };
        let right = self.alloc(Node::Leaf {
            entries: LeafEntries::from_entries_ordered(dim, order, right_entries),
            pages: 1,
        });
        (node, right, best_axis)
    }

    /// Directory split. For the R\*-tree this is the margin/overlap split.
    /// For the X-tree the result is accepted only if the two halves
    /// overlap less than the threshold; otherwise an overlap-minimal split
    /// along a split-history dimension is tried, and as a last resort the
    /// node becomes a supernode.
    fn split_inner(&mut self, node: NodeId) -> OverflowOutcome {
        let min = self.params.inner_min().max(1);
        let (entries, split_dims, pages) = match self.node(node) {
            Node::Inner {
                entries,
                split_dims,
                pages,
            } => (entries.clone(), *split_dims, *pages),
            Node::Leaf { .. } => unreachable!(),
        };
        let topo = self.rstar_inner_split(&entries, min);

        match self.params.variant {
            TreeVariant::RStar => {
                let (k, axis, sorted) = topo;
                let right = self.install_inner_split(node, sorted, k, split_dims, axis);
                OverflowOutcome::Split {
                    left: node,
                    right,
                    split_axis: axis,
                }
            }
            TreeVariant::XTree { max_overlap } => {
                let (k, axis, sorted) = topo;
                let m1 = rects_mbr(&sorted[..k]);
                let m2 = rects_mbr(&sorted[k..]);
                let ov = m1.overlap_volume(&m2);
                let union_vol = m1.volume() + m2.volume() - ov;
                let frac = if union_vol > 0.0 { ov / union_vol } else { 0.0 };
                if frac <= max_overlap {
                    let right = self.install_inner_split(node, sorted, k, split_dims, axis);
                    return OverflowOutcome::Split {
                        left: node,
                        right,
                        split_axis: axis,
                    };
                }
                // Overlap-minimal split guided by the split history.
                if let Some((k, axis, sorted)) = self.overlap_free_split(&entries, split_dims, min)
                {
                    let right = self.install_inner_split(node, sorted, k, split_dims, axis);
                    return OverflowOutcome::Split {
                        left: node,
                        right,
                        split_axis: axis,
                    };
                }
                // Supernode: extend the node by one page instead.
                match self.node_mut(node) {
                    Node::Inner { pages: p, .. } => *p = pages + 1,
                    Node::Leaf { .. } => unreachable!(),
                }
                OverflowOutcome::Supernode
            }
        }
    }

    /// The R\*-tree topological split of directory entries: returns the
    /// split position `k`, the chosen axis, and the entries sorted on that
    /// axis.
    fn rstar_inner_split(
        &self,
        entries: &[InnerEntry],
        min: usize,
    ) -> (usize, usize, Vec<InnerEntry>) {
        let dim = self.params.dim;
        let n = entries.len();
        let mut best: Option<(f64, usize, Vec<InnerEntry>)> = None;
        for axis in 0..dim {
            let mut sorted = entries.to_vec();
            sorted.sort_by(|a, b| {
                (a.mbr.lo(axis), a.mbr.hi(axis))
                    .partial_cmp(&(b.mbr.lo(axis), b.mbr.hi(axis)))
                    .expect("finite bounds")
            });
            let (prefix, suffix) = rect_prefix_suffix_mbrs(&sorted);
            let margin: f64 = distributions(n, min)
                .map(|k| prefix[k - 1].margin() + suffix[k].margin())
                .sum();
            match &best {
                Some((m, _, _)) if *m <= margin => {}
                _ => best = Some((margin, axis, sorted)),
            }
        }
        let (_, axis, sorted) = best.expect("at least one axis");
        let (prefix, suffix) = rect_prefix_suffix_mbrs(&sorted);
        let mut best_k = min;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for k in distributions(n, min) {
            let m1 = &prefix[k - 1];
            let m2 = &suffix[k];
            let key = (m1.overlap_volume(m2), m1.volume() + m2.volume());
            if key < best_key {
                best_key = key;
                best_k = k;
            }
        }
        (best_k, axis, sorted)
    }

    /// The X-tree overlap-minimal split: look for a dimension (preferring
    /// the split history) along which the children can be partitioned into
    /// two groups whose MBRs do not overlap on that axis.
    fn overlap_free_split(
        &self,
        entries: &[InnerEntry],
        split_dims: u64,
        min: usize,
    ) -> Option<(usize, usize, Vec<InnerEntry>)> {
        let dim = self.params.dim;
        let history: Vec<usize> = (0..dim).filter(|a| split_dims & (1 << a) != 0).collect();
        let others: Vec<usize> = (0..dim).filter(|a| split_dims & (1 << a) == 0).collect();
        for &axis in history.iter().chain(others.iter()) {
            let mut sorted = entries.to_vec();
            sorted.sort_by(|a, b| {
                a.mbr
                    .lo(axis)
                    .partial_cmp(&b.mbr.lo(axis))
                    .expect("finite bounds")
            });
            // Sweep: find a cut where everything left ends before
            // everything right begins.
            let mut max_hi = f64::NEG_INFINITY;
            for k in 1..sorted.len() {
                max_hi = max_hi.max(sorted[k - 1].mbr.hi(axis));
                if k < min || sorted.len() - k < min {
                    continue;
                }
                if max_hi <= sorted[k].mbr.lo(axis) {
                    return Some((k, axis, sorted));
                }
            }
        }
        None
    }

    fn install_inner_split(
        &mut self,
        node: NodeId,
        sorted: Vec<InnerEntry>,
        k: usize,
        split_dims: u64,
        axis: usize,
    ) -> NodeId {
        let mut left_entries = sorted;
        let right_entries = left_entries.split_off(k);
        let new_dims = split_dims | (1u64 << axis);
        // A split of a supernode can leave halves that still exceed a
        // single page; each half keeps exactly the pages its entry count
        // requires (supernodes shrink gradually as splits succeed).
        let pages_for =
            |len: usize| -> u32 { len.div_ceil(self.params.inner_capacity).max(1) as u32 };
        let left_pages = pages_for(left_entries.len());
        let right_pages = pages_for(right_entries.len());
        *self.node_mut(node) = Node::Inner {
            entries: left_entries,
            pages: left_pages,
            split_dims: new_dims,
        };
        self.alloc(Node::Inner {
            entries: right_entries,
            pages: right_pages,
            split_dims: new_dims,
        })
    }

    // ----- deletion ------------------------------------------------------

    /// Deletes one occurrence of `(point, item)`.
    pub fn delete(&mut self, point: &Point, item: u64) -> Result<(), IndexError> {
        if point.dim() != self.params.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.params.dim,
                got: point.dim(),
            });
        }
        let mut path = Vec::new();
        let leaf = self
            .find_leaf(self.root, point, item, &mut path)
            .ok_or(IndexError::NotFound)?;
        match self.node_mut(leaf) {
            Node::Leaf { entries, .. } => {
                let idx = entries
                    .position(point.coords(), item)
                    .expect("find_leaf guarantees presence");
                entries.swap_remove(idx);
            }
            Node::Inner { .. } => unreachable!(),
        }
        self.len -= 1;
        self.condense(leaf, path);
        Ok(())
    }

    fn find_leaf(
        &self,
        node: NodeId,
        point: &Point,
        item: u64,
        path: &mut Vec<(NodeId, usize)>,
    ) -> Option<NodeId> {
        match self.node(node) {
            Node::Leaf { entries, .. } => {
                if entries.position(point.coords(), item).is_some() {
                    Some(node)
                } else {
                    None
                }
            }
            Node::Inner { entries, .. } => {
                for (i, e) in entries.iter().enumerate() {
                    if e.mbr.contains_point(point) {
                        path.push((node, i));
                        if let Some(found) = self.find_leaf(e.child, point, item, path) {
                            return Some(found);
                        }
                        path.pop();
                    }
                }
                None
            }
        }
    }

    /// R-tree condensation after a delete: drop underfull nodes along the
    /// path, reinsert their orphaned points, shrink the root.
    fn condense(&mut self, leaf: NodeId, path: Vec<(NodeId, usize)>) {
        let mut orphans: Vec<LeafEntry> = Vec::new();
        let mut current = leaf;
        let mut path = path;
        while let Some((parent, idx)) = path.pop() {
            let min = if self.node(current).is_leaf() {
                self.params.leaf_min()
            } else {
                self.params.inner_min()
            };
            if self.node(current).len() < min {
                // Remove the child from its parent and collect its points.
                match self.node_mut(parent) {
                    Node::Inner { entries, .. } => {
                        entries.swap_remove(idx);
                    }
                    Node::Leaf { .. } => unreachable!(),
                }
                self.collect_points(current, &mut orphans);
                self.dealloc(current);
                // After swap_remove the recorded indices of deeper path
                // entries are unaffected (they are above us), but the
                // parent's other entry indices changed; we only use the
                // parent going up, so nothing else to fix.
            } else {
                let mbr = self.node(current).mbr().expect("non-underfull node");
                match self.node_mut(parent) {
                    Node::Inner { entries, .. } => entries[idx].mbr = mbr,
                    Node::Leaf { .. } => unreachable!(),
                }
            }
            current = parent;
        }
        // Shrink the root.
        loop {
            match self.node(self.root) {
                Node::Inner { entries, .. } if entries.len() == 1 => {
                    let child = entries[0].child;
                    self.dealloc(self.root);
                    self.root = child;
                    self.height -= 1;
                }
                Node::Inner { entries, .. } if entries.is_empty() => {
                    let dim = self.params.dim;
                    *self.node_mut(self.root) = Node::empty_leaf(dim);
                    self.height = 1;
                    break;
                }
                _ => break,
            }
        }
        for e in orphans {
            self.insert_leaf_entry(e, false);
        }
    }

    fn collect_points(&mut self, node: NodeId, out: &mut Vec<LeafEntry>) {
        match self.node(node).clone() {
            Node::Leaf { entries, .. } => out.extend(entries.to_entries()),
            Node::Inner { entries, .. } => {
                for e in entries {
                    self.collect_points(e.child, out);
                    self.dealloc(e.child);
                }
            }
        }
    }

    // ----- validation (used by tests) ------------------------------------

    /// Exhaustively checks the structural invariants; panics with a
    /// description on the first violation. Intended for tests.
    pub fn validate(&self) {
        let mut count = 0usize;
        self.validate_node(self.root, self.height, true, &mut count);
        assert_eq!(count, self.len, "len does not match stored points");
    }

    fn validate_node(&self, id: NodeId, level: usize, is_root: bool, count: &mut usize) {
        let node = self.node(id);
        let cap = self.capacity_of(node);
        assert!(
            node.len() <= cap,
            "node over capacity: {} > {cap}",
            node.len()
        );
        match node {
            Node::Leaf { entries, .. } => {
                assert_eq!(level, 1, "leaves must sit at level 1");
                if !is_root {
                    assert!(
                        entries.len() >= self.params.leaf_min(),
                        "underfull leaf: {}",
                        entries.len()
                    );
                }
                *count += entries.len();
            }
            Node::Inner { entries, .. } => {
                assert!(level > 1, "inner node at leaf level");
                if !is_root {
                    assert!(
                        entries.len() >= self.params.inner_min().min(2),
                        "underfull inner node: {}",
                        entries.len()
                    );
                } else {
                    assert!(entries.len() >= 2, "inner root must have >= 2 children");
                }
                for e in entries {
                    let child_mbr = self
                        .node(e.child)
                        .mbr()
                        .expect("child of inner node is non-empty");
                    assert!(
                        e.mbr.contains_rect(&child_mbr),
                        "entry MBR does not contain child MBR"
                    );
                    self.validate_node(e.child, level - 1, false, count);
                }
            }
        }
    }

    /// Total number of supernode pages beyond the first (0 for R\*-trees).
    pub fn supernode_extra_pages(&self) -> u64 {
        self.nodes
            .iter()
            .flatten()
            .map(|n| (n.pages() - 1) as u64)
            .sum()
    }

    /// Iterates over all live nodes (for statistics).
    pub fn iter_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().flatten()
    }
}

enum OverflowOutcome {
    Split {
        left: NodeId,
        right: NodeId,
        split_axis: usize,
    },
    Supernode,
}

/// All split positions `k` with `min <= k` and `min <= n - k`.
fn distributions(n: usize, min: usize) -> impl Iterator<Item = usize> {
    min..=(n - min)
}

/// Prefix and suffix MBR arrays of a sorted entry slice: `prefix[i]` covers
/// `entries[..=i]`, `suffix[i]` covers `entries[i..]`. O(n·d); turns the
/// R\*-tree distribution scan from quadratic to linear.
fn point_prefix_suffix_mbrs(entries: &[LeafEntry]) -> (Vec<HyperRect>, Vec<HyperRect>) {
    let n = entries.len();
    let mut prefix = Vec::with_capacity(n);
    let mut mbr = HyperRect::from_point(&entries[0].point);
    prefix.push(mbr.clone());
    for e in &entries[1..] {
        mbr.expand_to_point(&e.point);
        prefix.push(mbr.clone());
    }
    let mut suffix = vec![HyperRect::from_point(&entries[n - 1].point); n];
    for i in (0..n - 1).rev() {
        let mut m = suffix[i + 1].clone();
        m.expand_to_point(&entries[i].point);
        suffix[i] = m;
    }
    (prefix, suffix)
}

/// Rectangle version of [`point_prefix_suffix_mbrs`].
fn rect_prefix_suffix_mbrs(entries: &[InnerEntry]) -> (Vec<HyperRect>, Vec<HyperRect>) {
    let n = entries.len();
    let mut prefix = Vec::with_capacity(n);
    let mut mbr = entries[0].mbr.clone();
    prefix.push(mbr.clone());
    for e in &entries[1..] {
        mbr.expand_to_rect(&e.mbr);
        prefix.push(mbr.clone());
    }
    let mut suffix = vec![entries[n - 1].mbr.clone(); n];
    for i in (0..n - 1).rev() {
        let mut m = suffix[i + 1].clone();
        m.expand_to_rect(&entries[i].mbr);
        suffix[i] = m;
    }
    (prefix, suffix)
}

fn rects_mbr(entries: &[InnerEntry]) -> HyperRect {
    let mut it = entries.iter();
    let first = it.next().expect("non-empty group");
    let mut mbr = first.mbr.clone();
    for e in it {
        mbr.expand_to_rect(&e.mbr);
    }
    mbr
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_datagen::{DataGenerator, UniformGenerator};

    fn params(dim: usize, variant: TreeVariant) -> TreeParams {
        TreeParams::for_dim(dim, variant)
            .unwrap()
            .with_capacities(8, 8)
            .unwrap()
    }

    #[test]
    fn empty_tree() {
        let t = SpatialTree::new(params(3, TreeVariant::RStar));
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.bounds().is_none());
        t.validate();
    }

    #[test]
    fn insert_grows_and_validates() {
        let mut t = SpatialTree::new(params(4, TreeVariant::RStar));
        let pts = UniformGenerator::new(4).generate(500, 1);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() > 1);
        t.validate();
    }

    #[test]
    fn xtree_insert_validates_high_dim() {
        let mut t = SpatialTree::new(params(12, TreeVariant::xtree_default()));
        let pts = UniformGenerator::new(12).generate(800, 2);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        assert_eq!(t.len(), 800);
        t.validate();
    }

    #[test]
    fn xtree_creates_supernodes_in_high_dimensions() {
        // In high dimensions directory splits overlap badly; the X-tree
        // must resort to supernodes where the R*-tree splits regardless.
        let dim = 14;
        let pts = UniformGenerator::new(dim).generate(3000, 3);
        let mut x = SpatialTree::new(params(dim, TreeVariant::xtree_default()));
        for (i, p) in pts.iter().enumerate() {
            x.insert(p.clone(), i as u64).unwrap();
        }
        x.validate();
        assert!(
            x.supernode_extra_pages() > 0,
            "expected supernodes in {dim}-d"
        );
        let mut r = SpatialTree::new(params(dim, TreeVariant::RStar));
        for (i, p) in pts.iter().enumerate() {
            r.insert(p.clone(), i as u64).unwrap();
        }
        assert_eq!(r.supernode_extra_pages(), 0);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let mut t = SpatialTree::new(params(3, TreeVariant::RStar));
        let p = Point::new(vec![0.5, 0.5]).unwrap();
        assert!(matches!(
            t.insert(p.clone(), 0),
            Err(IndexError::DimensionMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert!(matches!(
            t.delete(&p, 0),
            Err(IndexError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn delete_removes_and_condenses() {
        let mut t = SpatialTree::new(params(3, TreeVariant::RStar));
        let pts = UniformGenerator::new(3).generate(300, 4);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        // Delete two thirds in a scattered order.
        for (i, p) in pts.iter().enumerate() {
            if i % 3 != 0 {
                t.delete(p, i as u64).unwrap();
            }
        }
        assert_eq!(t.len(), 100);
        t.validate();
        // Deleting an unknown point fails.
        assert_eq!(
            t.delete(&Point::new(vec![2.0, 2.0, 2.0]).unwrap(), 999),
            Err(IndexError::NotFound)
        );
    }

    #[test]
    fn delete_everything_returns_to_empty() {
        let mut t = SpatialTree::new(params(2, TreeVariant::xtree_default()));
        let pts = UniformGenerator::new(2).generate(120, 5);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        for (i, p) in pts.iter().enumerate() {
            t.delete(p, i as u64).unwrap();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.validate();
    }

    #[test]
    fn duplicate_points_are_supported() {
        let mut t = SpatialTree::new(params(2, TreeVariant::RStar));
        let p = Point::new(vec![0.5, 0.5]).unwrap();
        for i in 0..50 {
            t.insert(p.clone(), i).unwrap();
        }
        assert_eq!(t.len(), 50);
        t.validate();
        t.delete(&p, 25).unwrap();
        assert_eq!(t.len(), 49);
        t.validate();
    }

    #[test]
    fn disk_accounting_charges_pages() {
        use parsim_storage::SimDisk;
        let disk = Arc::new(SimDisk::new(0));
        let t = SpatialTree::new(params(2, TreeVariant::RStar)).with_disk(Arc::clone(&disk));
        t.charge_visit(t.root_id());
        assert_eq!(disk.read_count(), 1);
    }
}
