//! Cross-query page coalescing for visit accounting.
//!
//! Wraps any [`NodeSink`] with a [`ReadCombiner`]: within one submission
//! **wave** (a group of queries admitted together — see the parallel
//! engine's serve layer), the first query to request a page performs the
//! physical read through the inner sink, and every later request of the
//! same page by the same wave is reported as
//! [`VisitOutcome::Coalesced`] — no disk charge, and the inner layers
//! (page cache, disk) are not touched at all, so the cache's LRU order is
//! not perturbed by reads that never physically happened.
//!
//! Coalescing changes only the *physical* cost of execution: each query
//! still runs its own full search (its logical page and distance-\
//! evaluation counts are identical to uncoalesced execution), which is
//! why the parallel engine can promise bit-identical answers and traces
//! with coalescing on.

use std::sync::Arc;

use parsim_storage::ReadCombiner;

use crate::node::{Node, NodeId};
use crate::tree::{NodeSink, VisitOutcome};

/// A read-combining layer in front of another sink. See the module docs.
pub struct CoalescingSink {
    inner: Arc<dyn NodeSink>,
    combiner: ReadCombiner,
}

impl CoalescingSink {
    /// Wraps `inner` with an empty combining window (wave 0).
    pub fn new(inner: Arc<dyn NodeSink>) -> Self {
        CoalescingSink {
            inner,
            combiner: ReadCombiner::new(),
        }
    }

    /// Opens `wave`'s combining window; a wave change clears the window.
    /// Queries that should never coalesce with each other (e.g. two
    /// independent submissions) simply use distinct wave ids.
    pub fn begin_wave(&self, wave: u64) {
        self.combiner.begin_wave(wave);
    }

    /// Total visits coalesced since the sink was created (monotone across
    /// waves).
    pub fn coalesced_reads(&self) -> u64 {
        self.combiner.coalesced_reads()
    }
}

impl NodeSink for CoalescingSink {
    fn visit(&self, id: NodeId, node: &Node) -> VisitOutcome {
        if self.combiner.claim(id.0 as u64) {
            self.inner.visit(id, node)
        } else {
            VisitOutcome::Coalesced
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DiskSink;
    use parsim_storage::SimDisk;

    #[test]
    fn repeat_visits_within_a_wave_charge_once() {
        let disk = Arc::new(SimDisk::new(0));
        let sink = CoalescingSink::new(Arc::new(DiskSink(Arc::clone(&disk))));
        let node = Node::empty_leaf(2);
        sink.begin_wave(1);
        assert_eq!(sink.visit(NodeId(4), &node), VisitOutcome::Charged);
        assert_eq!(sink.visit(NodeId(4), &node), VisitOutcome::Coalesced);
        assert_eq!(disk.read_count(), 1);
        // A new wave charges the page again.
        sink.begin_wave(2);
        assert_eq!(sink.visit(NodeId(4), &node), VisitOutcome::Charged);
        assert_eq!(disk.read_count(), 2);
        assert_eq!(sink.coalesced_reads(), 1);
    }
}
