//! k-nearest-neighbor search.
//!
//! Two classical algorithms, both exact:
//!
//! * **RKV** — Roussopoulos, Kelley & Vincent \[RKV 95\]: depth-first
//!   branch-and-bound. Partitions are visited in MINDIST order; branches
//!   whose MINDIST exceeds the current k-th best distance are pruned, and
//!   for `k = 1` the MINMAXDIST bound additionally prunes partitions that
//!   provably cannot contain the nearest neighbor. This is the algorithm
//!   the paper runs on the X-tree.
//! * **HS** — Hjaltason & Samet \[HS 95\]: best-first incremental search
//!   with a global priority queue ordered by MINDIST. Optimal in the
//!   number of pages visited; applicable to any recursive partitioning.
//!
//! Both charge one page visit per node they read (supernodes charge their
//! page count), via [`SpatialTree::charge_visit`].
//!
//! Every search also counts its own work into a [`SearchStats`], and the
//! bounded entry points accept a [`SharedBound`] — the atomically shared
//! pruning bound of the paper's parallel variant 3, where every disk runs
//! its local search concurrently and publishes its k-th-best distance so
//! the other disks can prune against the global state of the query.
//!
//! Leaf scans run through a [`LeafScanner`] at a configurable
//! [`ScanTier`]: the cheap tiers first sweep the leaf's f32 or int8 mirror
//! with certified lower-bound kernels and re-rank only the survivors with
//! the canonical f64 kernels, so the answers stay bit-identical to the
//! pure-f64 scan while most rows never pay for f64 arithmetic (see
//! `DESIGN.md`, "Precision tiers").

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use parsim_geometry::{kernel, Point};

use crate::node::{LeafEntries, Node, NodeId};
use crate::params::ScanOrder;
use crate::tree::{SpatialTree, VisitOutcome};

/// Which k-NN algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KnnAlgorithm {
    /// Depth-first branch-and-bound \[RKV 95\] (the paper's choice).
    #[default]
    Rkv,
    /// Best-first incremental search \[HS 95\].
    Hs,
}

/// Arithmetic precision of the phase-1 leaf scan (see `DESIGN.md`,
/// "Precision tiers").
///
/// Every tier returns answers **bit-identical** to [`ScanTier::F64`]: the
/// cheap tiers only *filter* leaf rows using certified lower bounds on the
/// f64 distance (low-precision kernel sum widened by per-block error
/// bounds), and every survivor is re-ranked by the canonical f64 batch
/// kernel. A filtered row is provably at least as far as the current
/// pruning radius, exactly like a row abandoned by the early-abandon f64
/// kernel — same contract, cheaper arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScanTier {
    /// Canonical f64 kernels only (the default; no phase 1).
    #[default]
    F64,
    /// Phase 1 over the f32 mirror of each leaf block.
    F32,
    /// Phase 1 over the 8-bit scalar-quantized mirror of each leaf block.
    Q8,
}

/// One answer of a k-NN query.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// The caller-supplied item id of the matching point.
    pub item: u64,
    /// The matching point.
    pub point: Point,
    /// Euclidean distance to the query.
    pub dist: f64,
}

/// Work counters collected by one (per-tree) k-NN search.
///
/// `pages` counts the node visits locally, in the searching thread, so a
/// query's cost is exact even when many queries run concurrently against
/// the same disks (the global [`SimDisk`](parsim_storage::SimDisk)
/// counters blend concurrent queries together).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Pages read by this search (supernodes count their page span).
    pub pages: u64,
    /// Subtrees discarded by the pruning bound without being visited.
    pub pruned: u64,
    /// Node visits served from a page cache (counted here, in the search
    /// thread, so concurrent queries cannot blend their hits together).
    pub cache_hits: u64,
    /// Node visits that rode a physical read another in-flight query of
    /// the same submission wave already performed (cross-query page
    /// coalescing; no disk charged, cache untouched). Like `cache_hits`,
    /// counted in the search thread so the figure is exact per query.
    pub coalesced: u64,
    /// Candidate points whose **f64** distance evaluation was started. On
    /// [`ScanTier::F64`] this is every leaf row scanned (abandoned rows
    /// included); on the cheap tiers only phase-1 survivors start an f64
    /// evaluation, so this counter *is* the f64 kernel cost of the query.
    pub dist_evals: u64,
    /// Candidate points whose full f64 distance was never computed. On
    /// [`ScanTier::F64`]: abandoned mid-distance by a partial-sum
    /// checkpoint (a subset of `dist_evals`). On the cheap tiers: rows
    /// whose certified lower bound already cleared the pruning radius, so
    /// the f64 kernel was skipped entirely (disjoint from `dist_evals`).
    pub dist_evals_saved: u64,
    /// Phase-1 lower-bound kernel evaluations (f32 or q8 rows scanned).
    /// Zero on [`ScanTier::F64`], and zero for leaf blocks the cheap tiers
    /// route to the f64 path (no finite pruning radius yet, or a
    /// degenerate quantization grid).
    pub lb_evals: u64,
    /// Phase-1 survivors re-ranked by the exact f64 batch kernel. Always
    /// `≤ lb_evals`; each re-rank also counts into `dist_evals`. Zero on
    /// [`ScanTier::F64`] with the natural scan order (the energy-ordered
    /// f64 filter re-ranks its survivors too).
    pub rerank_evals: u64,
    /// Rows a bounded kernel abandoned at a partial-sum checkpoint, on any
    /// tier (f64 early abandonment, f32/q8 phase-1 mid-kernel abandons).
    /// Always a subset of `dist_evals_saved`.
    pub abandoned_rows: u64,
    /// Total 4-lane checkpoints the rows in `abandoned_rows` evaluated
    /// before abandoning. The mean abandon depth in *coordinates* is
    /// `4 · abandon_checkpoints / abandoned_rows` — the figure the
    /// energy scan order is designed to shrink.
    pub abandon_checkpoints: u64,
}

impl SearchStats {
    /// Accumulates another search's counters into this one.
    pub fn merge(&mut self, other: SearchStats) {
        self.pages += other.pages;
        self.pruned += other.pruned;
        self.cache_hits += other.cache_hits;
        self.coalesced += other.coalesced;
        self.dist_evals += other.dist_evals;
        self.dist_evals_saved += other.dist_evals_saved;
        self.lb_evals += other.lb_evals;
        self.rerank_evals += other.rerank_evals;
        self.abandoned_rows += other.abandoned_rows;
        self.abandon_checkpoints += other.abandon_checkpoints;
    }
}

/// The shared pruning bound of the paper's parallel search (Var. 3).
///
/// Each per-disk search thread publishes its local k-th-best squared
/// distance with [`SharedBound::tighten`]; every thread prunes against
/// [`SharedBound::get`], the minimum published so far. The global k-th
/// nearest distance is never larger than any disk's local k-th best, so
/// pruning against the shared bound keeps the merged result exact while
/// reading fewer pages than independent local searches.
///
/// Internally an `AtomicU64` over the IEEE-754 bits: non-negative doubles
/// order identically to their bit patterns, so tightening is a single
/// `fetch_min` — no locks on the query's hot path.
#[derive(Debug)]
pub struct SharedBound(AtomicU64);

impl SharedBound {
    /// A fresh bound, starting at `+∞` (nothing prunes yet).
    pub fn new() -> Self {
        SharedBound(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    /// The tightest squared distance published so far.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(AtomicOrdering::Acquire))
    }

    /// Publishes a candidate squared distance; keeps the minimum.
    pub fn tighten(&self, dist2: f64) {
        debug_assert!(dist2 >= 0.0, "squared distances are non-negative");
        self.0.fetch_min(dist2.to_bits(), AtomicOrdering::AcqRel);
    }
}

impl Default for SharedBound {
    fn default() -> Self {
        SharedBound::new()
    }
}

impl SpatialTree {
    /// Finds the `k` nearest neighbors of `query`, sorted by ascending
    /// distance. Returns fewer than `k` results only if the tree holds
    /// fewer than `k` points.
    pub fn knn(&self, query: &Point, k: usize, algorithm: KnnAlgorithm) -> Vec<Neighbor> {
        self.knn_traced(query, k, algorithm, None).0
    }

    /// Like [`SpatialTree::knn`], but returns the search's work counters
    /// and optionally prunes against a [`SharedBound`] published by
    /// concurrent searches of the same query on other trees.
    ///
    /// With a shared bound the returned list is this tree's **candidate
    /// set** for the global query: every point of the global k nearest
    /// that lives in this tree is present, but locally farther points may
    /// be cut early by the other threads' published bounds. Merge the
    /// candidates of all trees to obtain the exact global answer.
    pub fn knn_traced(
        &self,
        query: &Point,
        k: usize,
        algorithm: KnnAlgorithm,
        shared: Option<&SharedBound>,
    ) -> (Vec<Neighbor>, SearchStats) {
        self.knn_traced_tiered(query, k, algorithm, shared, ScanTier::F64)
    }

    /// Like [`SpatialTree::knn_traced`], with an explicit precision tier
    /// for the leaf scan.
    ///
    /// The answer list is identical for every tier — the cheap tiers only
    /// skip rows certified farther than the pruning radius — but the work
    /// counters move: on [`ScanTier::F32`] / [`ScanTier::Q8`] most leaf
    /// rows cost one [`SearchStats::lb_evals`] instead of an f64
    /// [`SearchStats::dist_evals`].
    pub fn knn_traced_tiered(
        &self,
        query: &Point,
        k: usize,
        algorithm: KnnAlgorithm,
        shared: Option<&SharedBound>,
        tier: ScanTier,
    ) -> (Vec<Neighbor>, SearchStats) {
        self.knn_traced_ordered(query, k, algorithm, shared, tier, ScanOrder::Natural)
    }

    /// Like [`SpatialTree::knn_traced_tiered`], with an explicit
    /// [`ScanOrder`] for the f64 leaf sweeps.
    ///
    /// [`ScanOrder::Energy`] runs the certified permuted filter over leaves
    /// that carry an energy permutation (see `DESIGN.md`, "Scan order");
    /// answers are bit-identical either way. The f32/q8 phase-1 sweeps
    /// always follow the leaf's physical layout regardless of this knob —
    /// their mirrors only *exist* in storage order.
    #[allow(clippy::too_many_arguments)]
    pub fn knn_traced_ordered(
        &self,
        query: &Point,
        k: usize,
        algorithm: KnnAlgorithm,
        shared: Option<&SharedBound>,
        tier: ScanTier,
        order: ScanOrder,
    ) -> (Vec<Neighbor>, SearchStats) {
        assert_eq!(query.dim(), self.params().dim, "query dimension mismatch");
        let mut stats = SearchStats::default();
        if k == 0 || self.is_empty() {
            return (Vec::new(), stats);
        }
        let mut scanner = LeafScanner::with_order(tier, order);
        let result = match algorithm {
            KnnAlgorithm::Rkv => {
                let mut best = BoundedMaxHeap::new(k);
                self.rkv_visit(
                    self.root_id(),
                    query,
                    k,
                    &mut best,
                    shared,
                    &mut scanner,
                    &mut stats,
                );
                best.into_sorted()
            }
            KnnAlgorithm::Hs => hs_search(
                &[self],
                query,
                k,
                shared,
                &mut scanner,
                std::slice::from_mut(&mut stats),
            ),
        };
        (result, stats)
    }

    // ----- RKV ------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn rkv_visit(
        &self,
        id: NodeId,
        query: &Point,
        k: usize,
        best: &mut BoundedMaxHeap,
        shared: Option<&SharedBound>,
        scanner: &mut LeafScanner,
        stats: &mut SearchStats,
    ) {
        match self.charge_visit(id) {
            VisitOutcome::CacheHit => stats.cache_hits += 1,
            VisitOutcome::Coalesced => stats.coalesced += 1,
            VisitOutcome::Charged => {}
        }
        stats.pages += self.node(id).pages() as u64;
        match self.node(id) {
            Node::Leaf { entries, .. } => {
                scanner.scan(entries, query, best, shared, stats);
            }
            Node::Inner { entries, .. } => {
                // Build the active branch list ordered by MINDIST.
                let mut branches: Vec<(f64, f64, NodeId)> = entries
                    .iter()
                    .map(|e| (e.mbr.min_dist2(query), e.mbr.min_max_dist2(query), e.child))
                    .collect();
                branches.sort_by(|a, b| a.0.total_cmp(&b.0));
                // MINMAXDIST pruning (valid for k = 1): no partition whose
                // MINDIST exceeds the smallest MINMAXDIST can contain the
                // nearest neighbor.
                if k == 1 {
                    let min_minmax = branches.iter().map(|b| b.1).fold(f64::INFINITY, f64::min);
                    let before = branches.len();
                    branches.retain(|b| b.0 <= min_minmax);
                    stats.pruned += (before - branches.len()) as u64;
                }
                for (i, &(min_dist, _, child)) in branches.iter().enumerate() {
                    if min_dist > prune_bound(best, shared) {
                        // Sorted order: everything further is pruned too.
                        stats.pruned += (branches.len() - i) as u64;
                        break;
                    }
                    self.rkv_visit(child, query, k, best, shared, scanner, stats);
                }
            }
        }
    }
}

/// The current pruning radius: the local k-th best once the heap is full,
/// tightened by whatever the concurrent searches have published.
fn prune_bound(best: &BoundedMaxHeap, shared: Option<&SharedBound>) -> f64 {
    let local = if best.is_full() {
        best.worst()
    } else {
        f64::INFINITY
    };
    match shared {
        Some(s) => local.min(s.get()),
        None => local,
    }
}

/// The unified leaf scan of every k-NN algorithm: one [`ScanTier`] plus
/// the per-query scratch buffers of the two-phase scan.
///
/// One scanner serves one query. The f32 query mirror is cast once, on the
/// first leaf; the per-block state — query codes on the leaf's
/// quantization grid, phase-1 sums, the survivor gather — is overwritten
/// by each `scan` call. The search driver ([`ForestCursor`], the
/// traced entry points) owns the scanner so the scratch allocations
/// amortize over every leaf of the search.
#[derive(Debug)]
pub struct LeafScanner {
    tier: ScanTier,
    /// Whether f64 sweeps over energy-permuted leaves run the certified
    /// permuted filter (the f32/q8 mirrors always follow storage order).
    order: ScanOrder,
    /// The query cast to f32, built on first use (constant per query).
    q32: Vec<f32>,
    /// Overestimate of `‖q − q32‖` (constant per query).
    rq32: f64,
    /// The query permuted into the current block's scan order (per block).
    qp: Vec<f64>,
    /// The f32 query permuted into the current block's scan order.
    q32p: Vec<f32>,
    /// The query encoded on the current block's q8 grids, in wide i32
    /// codes (per block).
    qcodes: Vec<i32>,
    /// Phase-1 sums (per block; `None` = abandoned at a checkpoint).
    lb32: Vec<Option<f32>>,
    lbq8: Vec<Option<f64>>,
    /// Row indices that survived phase 1 (per block).
    survivors: Vec<usize>,
    /// Survivor rows gathered contiguously for the f64 re-rank batch.
    gather: Vec<f64>,
    /// f64 batch kernel outputs (whole block, or survivors).
    d2: Vec<f64>,
}

impl LeafScanner {
    /// A fresh scanner running leaf scans at `tier`, natural f64 order.
    pub fn new(tier: ScanTier) -> Self {
        LeafScanner::with_order(tier, ScanOrder::Natural)
    }

    /// A fresh scanner running leaf scans at `tier` with the given f64
    /// scan order.
    pub fn with_order(tier: ScanTier, order: ScanOrder) -> Self {
        LeafScanner {
            tier,
            order,
            q32: Vec::new(),
            rq32: 0.0,
            qp: Vec::new(),
            q32p: Vec::new(),
            qcodes: Vec::new(),
            lb32: Vec::new(),
            lbq8: Vec::new(),
            survivors: Vec::new(),
            gather: Vec::new(),
            d2: Vec::new(),
        }
    }

    /// The tier this scanner runs at.
    pub fn tier(&self) -> ScanTier {
        self.tier
    }

    /// The f64 scan order this scanner runs with.
    pub fn order(&self) -> ScanOrder {
        self.order
    }

    /// Scans one leaf block, offering every non-filtered candidate to
    /// `best` and publishing the tightened k-th best to `shared`. A
    /// filtered row is *certified* to have computed f64 `dist2 ≥` the
    /// pruning radius at block start, so — like the early-abandoned rows of
    /// the f64 tier — it can never displace a k-nearest candidate and the
    /// merged answer stays exact.
    fn scan(
        &mut self,
        entries: &LeafEntries,
        query: &Point,
        best: &mut BoundedMaxHeap,
        shared: Option<&SharedBound>,
        stats: &mut SearchStats,
    ) {
        match self.tier {
            ScanTier::F64 => self.scan_f64(entries, query, best, shared, stats),
            ScanTier::F32 => self.scan_f32(entries, query, best, shared, stats),
            ScanTier::Q8 => self.scan_q8(entries, query, best, shared, stats),
        }
        if let (true, Some(bound)) = (best.is_full(), shared) {
            bound.tighten(best.worst());
        }
    }

    /// The canonical f64 scan, also the fallback of the cheap tiers.
    ///
    /// When the candidate heap cannot fill mid-block and no concurrent
    /// search has published a bound, the pruning radius is `+∞` for every
    /// row — early abandonment is provably a no-op — so the whole block
    /// runs through the batch kernel: per-row sums bit-identical to
    /// [`kernel::dist2_bounded`], identical counters, one straight-line
    /// sweep. Otherwise the per-row bounded kernel runs, re-reading the
    /// pruning radius between rows so candidates admitted earlier in the
    /// block tighten the abandonment of later ones.
    fn scan_f64(
        &mut self,
        entries: &LeafEntries,
        query: &Point,
        best: &mut BoundedMaxHeap,
        shared: Option<&SharedBound>,
        stats: &mut SearchStats,
    ) {
        let n = entries.len();
        let batchable =
            best.len() + n <= best.k && shared.map_or(true, |s| s.get() == f64::INFINITY);
        if batchable {
            self.d2.resize(n, 0.0);
            kernel::dist2_batch(
                query.coords(),
                entries.flat_coords(),
                entries.dim(),
                &mut self.d2,
            );
            stats.dist_evals += n as u64;
            for (i, &d2) in self.d2.iter().enumerate() {
                best.offer(d2, entries.row(i), entries.item(i));
            }
        } else if self.order == ScanOrder::Energy && entries.scan_perm().is_some() {
            self.scan_f64_energy(entries, query, best, shared, stats);
        } else {
            for (row, item) in entries.iter() {
                stats.dist_evals += 1;
                let (d2, cp) =
                    kernel::dist2_bounded_depth(query.coords(), row, prune_bound(best, shared));
                match d2 {
                    Some(d2) => best.offer(d2, row, item),
                    None => {
                        stats.dist_evals_saved += 1;
                        stats.abandoned_rows += 1;
                        stats.abandon_checkpoints += cp;
                    }
                }
            }
        }
    }

    /// The energy-ordered f64 sweep: a certified *filter* over the leaf's
    /// permuted rows.
    ///
    /// Permuting the summation order changes 4-lane FP rounding, so the
    /// permuted partial sums are not bit-identical to the natural kernel's
    /// — a row is therefore only abandoned when its permuted partial sum
    /// clears [`kernel::order_prune_bound`], which certifies that the
    /// *natural-order computed* distance is at least the pruning radius
    /// (same contract as the f32/q8 phase-1 filters). Survivors are
    /// re-ranked with the canonical natural-order kernel, so offered
    /// distances — and hence answers — stay bit-identical to the natural
    /// scan. Because the high-variance lanes come first, abandons fire at
    /// earlier checkpoints than a natural sweep's.
    fn scan_f64_energy(
        &mut self,
        entries: &LeafEntries,
        query: &Point,
        best: &mut BoundedMaxHeap,
        shared: Option<&SharedBound>,
        stats: &mut SearchStats,
    ) {
        let perm = entries.scan_perm().expect("energy leaf has a permutation");
        let dim = entries.dim();
        let q = query.coords();
        self.qp.clear();
        self.qp.extend(perm.iter().map(|&p| q[p as usize]));
        for (i, srow) in entries.flat_scan_coords().chunks_exact(dim).enumerate() {
            let bound = prune_bound(best, shared);
            if bound == f64::INFINITY {
                // Nothing can be filtered yet; run the canonical kernel.
                let row = entries.row(i);
                stats.dist_evals += 1;
                best.offer(kernel::dist2(q, row), row, entries.item(i));
                continue;
            }
            stats.lb_evals += 1;
            let (s, cp) =
                kernel::dist2_bounded_depth(&self.qp, srow, kernel::order_prune_bound(bound));
            match s {
                Some(_) => {
                    let row = entries.row(i);
                    stats.dist_evals += 1;
                    stats.rerank_evals += 1;
                    best.offer(kernel::dist2(q, row), row, entries.item(i));
                }
                None => {
                    stats.dist_evals_saved += 1;
                    stats.abandoned_rows += 1;
                    stats.abandon_checkpoints += cp;
                }
            }
        }
    }

    /// Phase 1 over the block's f32 mirror: one bounded batch sweep against
    /// the certified prune threshold, then the exact re-rank of survivors.
    fn scan_f32(
        &mut self,
        entries: &LeafEntries,
        query: &Point,
        best: &mut BoundedMaxHeap,
        shared: Option<&SharedBound>,
        stats: &mut SearchStats,
    ) {
        let bound = prune_bound(best, shared);
        if bound == f64::INFINITY {
            // No finite pruning radius yet: phase 1 could certify nothing,
            // so skip straight to the exact scan.
            return self.scan_f64(entries, query, best, shared, stats);
        }
        let dim = entries.dim();
        let n = entries.len();
        if self.q32.len() != dim {
            self.q32 = query.coords().iter().map(|&c| c as f32).collect();
            self.rq32 = kernel::displacement_norm_f32(query.coords(), &self.q32);
        }
        // The f32 mirror lives in the leaf's physical scan order; permute
        // the query cast to match. Casting is elementwise, so permuting
        // the cast equals casting the permuted query, and the displacement
        // radius is a norm — invariant under the permutation.
        let q32: &[f32] = match entries.scan_perm() {
            None => &self.q32,
            Some(perm) => {
                let q32 = &self.q32;
                self.q32p.clear();
                self.q32p.extend(perm.iter().map(|&p| q32[p as usize]));
                &self.q32p
            }
        };
        // The threshold is frozen at block start: a later (tighter) radius
        // only makes rows certified against this one *more* prunable.
        let t = kernel::f32_prune_threshold(bound, self.rq32, entries.f32_radius(), dim);
        self.lb32.resize(n, None);
        let (ab, cp) = kernel::dist2_batch_f32_bounded_depth(
            q32,
            entries.flat_f32(),
            dim,
            kernel::f32_kernel_bound(t),
            &mut self.lb32,
        );
        stats.lb_evals += n as u64;
        stats.abandoned_rows += ab;
        stats.abandon_checkpoints += cp;
        self.survivors.clear();
        for (i, &s) in self.lb32.iter().enumerate() {
            if kernel::f32_row_prunable(s, t) {
                stats.dist_evals_saved += 1;
            } else {
                self.survivors.push(i);
            }
        }
        self.rerank(entries, query, best, stats);
    }

    /// Phase 1 over the block's 8-bit scalar-quantized mirror, using the
    /// per-dimension grids through the weighted q8 kernels. Blocks with a
    /// degenerate grid (empty, or a coordinate range too wide for the grid
    /// arithmetic) certify nothing and stay exact. The mirror lives in the
    /// leaf's physical scan order; `quantize_query` encodes the query in
    /// the same order, so no extra permute is needed here.
    fn scan_q8(
        &mut self,
        entries: &LeafEntries,
        query: &Point,
        best: &mut BoundedMaxHeap,
        shared: Option<&SharedBound>,
        stats: &mut SearchStats,
    ) {
        let bound = prune_bound(best, shared);
        if entries.q8_grid().is_none() || bound == f64::INFINITY {
            return self.scan_f64(entries, query, best, shared, stats);
        }
        let dim = entries.dim();
        let n = entries.len();
        let rq = entries.quantize_query(query.coords(), &mut self.qcodes);
        // The weighted kernel accumulates in f64, so the certified
        // threshold is the kernel abandon bound directly.
        let t = kernel::q8w_prune_threshold(bound, rq, entries.q8_radius(), dim);
        self.lbq8.resize(n, None);
        let (ab, cp) = kernel::dist2_batch_q8w_bounded_depth(
            &self.qcodes,
            entries.codes(),
            entries.q8_weights(),
            dim,
            t,
            &mut self.lbq8,
        );
        stats.lb_evals += n as u64;
        stats.abandoned_rows += ab;
        stats.abandon_checkpoints += cp;
        self.survivors.clear();
        for (i, &s) in self.lbq8.iter().enumerate() {
            if kernel::q8w_row_prunable(s, t) {
                stats.dist_evals_saved += 1;
            } else {
                self.survivors.push(i);
            }
        }
        self.rerank(entries, query, best, stats);
    }

    /// Phase 2: the exact f64 batch kernel over the phase-1 survivors.
    /// [`kernel::dist2_batch`] is bit-identical to [`kernel::dist2`] per
    /// row, so tiered answers match the f64 tier exactly.
    fn rerank(
        &mut self,
        entries: &LeafEntries,
        query: &Point,
        best: &mut BoundedMaxHeap,
        stats: &mut SearchStats,
    ) {
        let dim = entries.dim();
        let m = self.survivors.len();
        self.gather.clear();
        for &i in &self.survivors {
            self.gather.extend_from_slice(entries.row(i));
        }
        self.d2.resize(m, 0.0);
        kernel::dist2_batch(query.coords(), &self.gather, dim, &mut self.d2);
        stats.rerank_evals += m as u64;
        stats.dist_evals += m as u64;
        for (j, &i) in self.survivors.iter().enumerate() {
            best.offer(self.d2[j], entries.row(i), entries.item(i));
        }
    }
}

/// k-NN search over a **forest** of trees with a single shared pruning
/// bound — the parallel X-tree's logical search. Each tree charges its own
/// disk, so the per-disk page counts are exactly the pages a
/// globally-pruned parallel algorithm must read (never more, as would
/// happen if every disk ran an independent local search to completion).
pub fn forest_knn(
    trees: &[&SpatialTree],
    query: &Point,
    k: usize,
    algorithm: KnnAlgorithm,
) -> Vec<Neighbor> {
    forest_knn_traced(trees, query, k, algorithm).0
}

/// Like [`forest_knn`], but additionally returns one [`SearchStats`] per
/// tree, counted locally in the calling thread — the exact per-disk page
/// cost of this query even when other queries run concurrently.
pub fn forest_knn_traced(
    trees: &[&SpatialTree],
    query: &Point,
    k: usize,
    algorithm: KnnAlgorithm,
) -> (Vec<Neighbor>, Vec<SearchStats>) {
    forest_knn_traced_tiered(trees, query, k, algorithm, ScanTier::F64)
}

/// Like [`forest_knn_traced`], with an explicit [`ScanTier`] for the leaf
/// scans. Answers are identical across tiers; only the work counters move.
pub fn forest_knn_traced_tiered(
    trees: &[&SpatialTree],
    query: &Point,
    k: usize,
    algorithm: KnnAlgorithm,
    tier: ScanTier,
) -> (Vec<Neighbor>, Vec<SearchStats>) {
    forest_knn_traced_ordered(trees, query, k, algorithm, tier, ScanOrder::Natural)
}

/// Like [`forest_knn_traced_tiered`], with an explicit [`ScanOrder`] for
/// the f64 leaf sweeps (see [`SpatialTree::knn_traced_ordered`]). Answers
/// are identical across orders; only the work counters move.
pub fn forest_knn_traced_ordered(
    trees: &[&SpatialTree],
    query: &Point,
    k: usize,
    algorithm: KnnAlgorithm,
    tier: ScanTier,
    order: ScanOrder,
) -> (Vec<Neighbor>, Vec<SearchStats>) {
    let mut stats = vec![SearchStats::default(); trees.len()];
    if k == 0 {
        return (Vec::new(), stats);
    }
    let result = match algorithm {
        KnnAlgorithm::Rkv => forest_knn_rkv(trees, query, k, tier, order, &mut stats),
        KnnAlgorithm::Hs => {
            let mut scanner = LeafScanner::with_order(tier, order);
            hs_search(trees, query, k, None, &mut scanner, &mut stats)
        }
    };
    (result, stats)
}

/// RKV over a forest: the tree roots form a virtual root's branch list,
/// sorted by MINDIST and pruned against the shared best-k bound.
fn forest_knn_rkv(
    trees: &[&SpatialTree],
    query: &Point,
    k: usize,
    tier: ScanTier,
    order: ScanOrder,
    stats: &mut [SearchStats],
) -> Vec<Neighbor> {
    let mut cursor = ForestCursor::with_tier_order(k, tier, order);
    let itinerary = forest_itinerary(trees, query);
    for (i, &(min_dist, ti)) in itinerary.iter().enumerate() {
        if cursor.prunable(min_dist) {
            // Sorted order: the remaining whole trees are pruned.
            for &(_, tj) in &itinerary[i..] {
                stats[tj].pruned += 1;
            }
            break;
        }
        cursor.visit(trees[ti], query, &mut stats[ti]);
    }
    cursor.finish()
}

/// The RKV forest visiting order: `(root MINDIST², tree index)` of every
/// non-empty tree, sorted ascending (ties keep index order). This is the
/// exact order [`forest_knn_traced`] visits trees with
/// [`KnnAlgorithm::Rkv`], exposed so distributed executors (the parallel
/// engine's worker pool pipelines one [`ForestCursor`] across the per-disk
/// workers in this order) reproduce its traces bit-for-bit.
pub fn forest_itinerary(trees: &[&SpatialTree], query: &Point) -> Vec<(f64, usize)> {
    let mut roots: Vec<(f64, usize)> = trees
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_empty())
        .map(|(ti, t)| {
            let d = t
                .bounds()
                .map(|b| b.min_dist2(query))
                .unwrap_or(f64::INFINITY);
            (d, ti)
        })
        .collect();
    roots.sort_by(|a, b| a.0.total_cmp(&b.0));
    roots
}

/// A resumable RKV forest search: the single bounded candidate heap of
/// [`forest_knn_traced`] with [`KnnAlgorithm::Rkv`], detached from the
/// loop that drives it.
///
/// Visiting the trees of a [`forest_itinerary`] in order — checking
/// [`ForestCursor::prunable`] before each [`ForestCursor::visit`] and
/// charging one `pruned` per remaining tree once it fires — performs
/// *exactly* the canonical forest search: same neighbors, same per-tree
/// [`SearchStats`]. Because the cursor owns all of the search's mutable
/// state it can hop between threads mid-search, which is how the parallel
/// engine's persistent worker pool pipelines one query across its
/// per-disk workers without giving up trace parity with the
/// single-threaded reference path.
pub struct ForestCursor {
    best: BoundedMaxHeap,
    scanner: LeafScanner,
}

impl ForestCursor {
    /// A fresh cursor searching for the `k` nearest neighbors at the
    /// default [`ScanTier::F64`].
    pub fn new(k: usize) -> Self {
        ForestCursor::with_tier(k, ScanTier::F64)
    }

    /// A fresh cursor whose leaf scans run at `tier`. The neighbors found
    /// are identical for every tier; the per-tree [`SearchStats`] report
    /// the tier's cost split across `lb_evals` / `rerank_evals` /
    /// `dist_evals`.
    pub fn with_tier(k: usize, tier: ScanTier) -> Self {
        ForestCursor::with_tier_order(k, tier, ScanOrder::Natural)
    }

    /// A fresh cursor with an explicit [`ScanOrder`] for the f64 leaf
    /// sweeps (see [`SpatialTree::knn_traced_ordered`]).
    pub fn with_tier_order(k: usize, tier: ScanTier, order: ScanOrder) -> Self {
        ForestCursor {
            best: BoundedMaxHeap::new(k),
            scanner: LeafScanner::with_order(tier, order),
        }
    }

    /// The tier this cursor's leaf scans run at.
    pub fn tier(&self) -> ScanTier {
        self.scanner.tier()
    }

    /// The f64 scan order this cursor's leaf scans run with.
    pub fn order(&self) -> ScanOrder {
        self.scanner.order()
    }

    /// True once every tree whose root MINDIST² is at least `min_dist2`
    /// can no longer contribute a k-nearest point. Itineraries are sorted,
    /// so the first prunable stop prunes all remaining stops.
    pub fn prunable(&self, min_dist2: f64) -> bool {
        self.best.is_full() && min_dist2 > self.best.worst()
    }

    /// Runs the RKV descent of one tree, tightening this cursor's bound
    /// with every candidate found. Counts the tree's work into `stats`.
    pub fn visit(&mut self, tree: &SpatialTree, query: &Point, stats: &mut SearchStats) {
        if self.best.k == 0 || tree.is_empty() {
            return;
        }
        tree.rkv_visit(
            tree.root_id(),
            query,
            self.best.k,
            &mut self.best,
            None,
            &mut self.scanner,
            stats,
        );
    }

    /// Consumes the cursor, returning the neighbors found so far sorted by
    /// ascending distance (ties by item id).
    pub fn finish(self) -> Vec<Neighbor> {
        self.best.into_sorted()
    }
}

/// Best-first (HS) search over a forest of trees: one priority queue of
/// partitions ordered by MINDIST, seeded with all roots. Visits pages in
/// globally optimal order; stops as soon as the nearest unexplored
/// partition lies beyond the current k-th best (or beyond the shared
/// bound, when one is installed).
fn hs_search(
    trees: &[&SpatialTree],
    query: &Point,
    k: usize,
    shared: Option<&SharedBound>,
    scanner: &mut LeafScanner,
    stats: &mut [SearchStats],
) -> Vec<Neighbor> {
    let mut best = BoundedMaxHeap::new(k);
    let mut queue: BinaryHeap<HsEntry> = BinaryHeap::new();
    for (ti, tree) in trees.iter().enumerate() {
        if !tree.is_empty() {
            let d = tree
                .bounds()
                .map(|b| b.min_dist2(query))
                .unwrap_or(f64::INFINITY);
            queue.push(HsEntry {
                dist2: d,
                tree: ti,
                node: tree.root_id(),
            });
        }
    }
    while let Some(entry) = queue.pop() {
        if entry.dist2 > prune_bound(&best, shared) {
            // The queue is distance-ordered: this partition and everything
            // still enqueued can no longer contain a k-nearest point.
            stats[entry.tree].pruned += 1;
            for rest in queue.drain() {
                stats[rest.tree].pruned += 1;
            }
            break;
        }
        let tree = trees[entry.tree];
        match tree.charge_visit(entry.node) {
            VisitOutcome::CacheHit => stats[entry.tree].cache_hits += 1,
            VisitOutcome::Coalesced => stats[entry.tree].coalesced += 1,
            VisitOutcome::Charged => {}
        }
        stats[entry.tree].pages += tree.node(entry.node).pages() as u64;
        match tree.node(entry.node) {
            Node::Leaf { entries, .. } => {
                scanner.scan(entries, query, &mut best, shared, &mut stats[entry.tree]);
            }
            Node::Inner { entries, .. } => {
                for e in entries {
                    let d = e.mbr.min_dist2(query);
                    if d > prune_bound(&best, shared) {
                        stats[entry.tree].pruned += 1;
                    } else {
                        queue.push(HsEntry {
                            dist2: d,
                            tree: entry.tree,
                            node: e.child,
                        });
                    }
                }
            }
        }
    }
    best.into_sorted()
}

/// Exhaustive scan — the ground truth used by tests and the tiny-database
/// fallback.
pub fn brute_force_knn(data: &[(Point, u64)], query: &Point, k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = data
        .iter()
        .map(|(p, item)| Neighbor {
            item: *item,
            point: p.clone(),
            dist: p.dist(query),
        })
        .collect();
    all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.item.cmp(&b.item)));
    all.truncate(k);
    all
}

// ----- helpers -------------------------------------------------------------

/// Max-heap of the k best candidates seen so far (by squared distance).
struct BoundedMaxHeap {
    k: usize,
    heap: BinaryHeap<HeapNeighbor>,
}

struct HeapNeighbor {
    dist2: f64,
    item: u64,
    point: Point,
}

impl PartialEq for HeapNeighbor {
    fn eq(&self, other: &Self) -> bool {
        self.dist2 == other.dist2 && self.item == other.item
    }
}
impl Eq for HeapNeighbor {}
impl PartialOrd for HeapNeighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNeighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist2
            .total_cmp(&other.dist2)
            .then(self.item.cmp(&other.item))
    }
}

impl BoundedMaxHeap {
    fn new(k: usize) -> Self {
        BoundedMaxHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers a candidate row; the point is materialized only if it enters
    /// the heap (rejected candidates cost no allocation).
    fn offer(&mut self, dist2: f64, row: &[f64], item: u64) {
        if self.heap.len() < self.k {
            self.heap.push(HeapNeighbor {
                dist2,
                item,
                point: Point::from_vec(row.to_vec()),
            });
        } else if dist2 < self.worst() {
            self.heap.push(HeapNeighbor {
                dist2,
                item,
                point: Point::from_vec(row.to_vec()),
            });
            self.heap.pop();
        }
    }

    fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// Number of candidates currently held (≤ k).
    fn len(&self) -> usize {
        self.heap.len()
    }

    /// The current k-th best squared distance (∞ until full).
    fn worst(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map(|n| n.dist2).unwrap_or(f64::INFINITY)
        }
    }

    fn into_sorted(self) -> Vec<Neighbor> {
        let mut v: Vec<HeapNeighbor> = self.heap.into_vec();
        v.sort();
        v.into_iter()
            .map(|n| Neighbor {
                item: n.item,
                point: n.point,
                dist: n.dist2.sqrt(),
            })
            .collect()
    }
}

/// Priority-queue entry of the HS algorithm: an unexplored partition
/// (min-heap via reversed Ord).
struct HsEntry {
    dist2: f64,
    tree: usize,
    node: NodeId,
}

impl PartialEq for HsEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist2 == other.dist2
    }
}
impl Eq for HsEntry {}
impl PartialOrd for HsEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HsEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the smallest dist2
        // first.
        other.dist2.total_cmp(&self.dist2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{TreeParams, TreeVariant};
    use parsim_datagen::{ClusteredGenerator, DataGenerator, UniformGenerator};

    fn build_tree(pts: &[Point], dim: usize, variant: TreeVariant) -> SpatialTree {
        let params = TreeParams::for_dim(dim, variant)
            .unwrap()
            .with_capacities(8, 8)
            .unwrap();
        let mut t = SpatialTree::new(params);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        t
    }

    fn check_matches_brute_force(pts: &[Point], dim: usize, k: usize, algo: KnnAlgorithm) {
        let tree = build_tree(pts, dim, TreeVariant::xtree_default());
        let data: Vec<(Point, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        let queries = UniformGenerator::new(dim).generate(20, 999);
        for q in &queries {
            let got = tree.knn(q, k, algo);
            let want = brute_force_knn(&data, q, k);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want.iter()) {
                // Distances must agree exactly (same arithmetic); items may
                // differ only between equidistant points.
                assert!(
                    (g.dist - w.dist).abs() < 1e-12,
                    "k={k} algo={algo:?}: {} vs {}",
                    g.dist,
                    w.dist
                );
            }
        }
    }

    #[test]
    fn rkv_matches_brute_force_uniform() {
        let pts = UniformGenerator::new(6).generate(600, 1);
        check_matches_brute_force(&pts, 6, 1, KnnAlgorithm::Rkv);
        check_matches_brute_force(&pts, 6, 10, KnnAlgorithm::Rkv);
    }

    #[test]
    fn hs_matches_brute_force_uniform() {
        let pts = UniformGenerator::new(6).generate(600, 2);
        check_matches_brute_force(&pts, 6, 1, KnnAlgorithm::Hs);
        check_matches_brute_force(&pts, 6, 10, KnnAlgorithm::Hs);
    }

    #[test]
    fn knn_on_clustered_data() {
        let pts = ClusteredGenerator::new(8, 4, 0.03).generate(500, 3);
        check_matches_brute_force(&pts, 8, 5, KnnAlgorithm::Rkv);
        check_matches_brute_force(&pts, 8, 5, KnnAlgorithm::Hs);
    }

    #[test]
    fn knn_edge_cases() {
        let pts = UniformGenerator::new(3).generate(5, 4);
        let tree = build_tree(&pts, 3, TreeVariant::RStar);
        let q = Point::new(vec![0.5, 0.5, 0.5]).unwrap();
        // k = 0.
        assert!(tree.knn(&q, 0, KnnAlgorithm::Rkv).is_empty());
        // k > len returns everything.
        assert_eq!(tree.knn(&q, 50, KnnAlgorithm::Rkv).len(), 5);
        assert_eq!(tree.knn(&q, 50, KnnAlgorithm::Hs).len(), 5);
        // Empty tree.
        let empty = SpatialTree::new(TreeParams::for_dim(3, TreeVariant::RStar).unwrap());
        assert!(empty.knn(&q, 3, KnnAlgorithm::Hs).is_empty());
    }

    #[test]
    fn results_are_sorted_ascending() {
        let pts = UniformGenerator::new(4).generate(300, 5);
        let tree = build_tree(&pts, 4, TreeVariant::xtree_default());
        let q = Point::new(vec![0.2, 0.8, 0.5, 0.1]).unwrap();
        for algo in [KnnAlgorithm::Rkv, KnnAlgorithm::Hs] {
            let res = tree.knn(&q, 20, algo);
            assert!(res.windows(2).all(|w| w[0].dist <= w[1].dist));
        }
    }

    #[test]
    fn exact_point_query_returns_distance_zero() {
        let pts = UniformGenerator::new(5).generate(200, 6);
        let tree = build_tree(&pts, 5, TreeVariant::RStar);
        let res = tree.knn(&pts[77], 1, KnnAlgorithm::Rkv);
        assert_eq!(res[0].dist, 0.0);
        assert_eq!(res[0].item, 77);
    }

    #[test]
    fn hs_visits_no_more_pages_than_rkv() {
        // HS is page-optimal; over a workload it must not read more pages
        // than RKV.
        use parsim_storage::SimDisk;
        use std::sync::Arc;
        let dim = 8;
        let pts = UniformGenerator::new(dim).generate(2000, 7);
        let queries = UniformGenerator::new(dim).generate(20, 8);

        let count_pages = |algo: KnnAlgorithm| -> u64 {
            let disk = Arc::new(SimDisk::new(0));
            let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
            let mut t = SpatialTree::new(params).with_disk(Arc::clone(&disk));
            for (i, p) in pts.iter().enumerate() {
                t.insert(p.clone(), i as u64).unwrap();
            }
            let before = disk.read_count();
            for q in &queries {
                t.knn(q, 10, algo);
            }
            disk.read_count() - before
        };
        let hs = count_pages(KnnAlgorithm::Hs);
        let rkv = count_pages(KnnAlgorithm::Rkv);
        assert!(hs <= rkv, "HS read {hs} pages, RKV {rkv}");
    }

    #[test]
    fn shared_bound_keeps_the_minimum() {
        let b = SharedBound::new();
        assert_eq!(b.get(), f64::INFINITY);
        b.tighten(4.0);
        assert_eq!(b.get(), 4.0);
        b.tighten(9.0); // looser: ignored
        assert_eq!(b.get(), 4.0);
        b.tighten(0.25);
        assert_eq!(b.get(), 0.25);
        b.tighten(0.0);
        assert_eq!(b.get(), 0.0);
    }

    #[test]
    fn traced_search_counts_exactly_the_charged_pages() {
        use parsim_storage::SimDisk;
        use std::sync::Arc;
        let dim = 6;
        let pts = UniformGenerator::new(dim).generate(2500, 3);
        for algo in [KnnAlgorithm::Rkv, KnnAlgorithm::Hs] {
            let disk = Arc::new(SimDisk::new(0));
            let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
            let mut t = SpatialTree::new(params).with_disk(Arc::clone(&disk));
            for (i, p) in pts.iter().enumerate() {
                t.insert(p.clone(), i as u64).unwrap();
            }
            for q in &UniformGenerator::new(dim).generate(10, 4) {
                let before = disk.read_count();
                let (res, stats) = t.knn_traced(q, 5, algo, None);
                assert_eq!(res.len(), 5);
                assert_eq!(
                    stats.pages,
                    disk.read_count() - before,
                    "local page count must equal the disk charge ({algo:?})"
                );
                assert!(stats.pages > 0);
            }
        }
    }

    #[test]
    fn bounded_partial_searches_merge_to_the_exact_answer() {
        // Split the data over two trees and run each side's search with a
        // shared bound already tightened by the other side — the merged
        // candidates must still contain the exact global top-k.
        let dim = 7;
        let k = 8;
        let pts = UniformGenerator::new(dim).generate(3000, 11);
        let (left, right): (Vec<_>, Vec<_>) = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .partition(|(_, i)| i % 2 == 0);
        let lt = build_tree_items(&left, dim);
        let rt = build_tree_items(&right, dim);
        let data: Vec<(Point, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        for algo in [KnnAlgorithm::Rkv, KnnAlgorithm::Hs] {
            for q in &UniformGenerator::new(dim).generate(15, 12) {
                let bound = SharedBound::new();
                let (lres, _) = lt.knn_traced(q, k, algo, Some(&bound));
                let (rres, _) = rt.knn_traced(q, k, algo, Some(&bound));
                let mut merged: Vec<Neighbor> = lres.into_iter().chain(rres).collect();
                merged.sort_by(|a, b| {
                    a.dist
                        .partial_cmp(&b.dist)
                        .unwrap()
                        .then(a.item.cmp(&b.item))
                });
                merged.truncate(k);
                let want = brute_force_knn(&data, q, k);
                assert_eq!(merged.len(), want.len());
                for (g, w) in merged.iter().zip(&want) {
                    assert!((g.dist - w.dist).abs() < 1e-12, "{algo:?}");
                }
            }
        }
    }

    fn build_tree_items(items: &[(Point, u64)], dim: usize) -> SpatialTree {
        let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
        let mut t = SpatialTree::new(params);
        for (p, i) in items {
            t.insert(p.clone(), *i).unwrap();
        }
        t
    }

    #[test]
    fn cursor_replays_the_forest_search_exactly() {
        // Driving a ForestCursor along the itinerary — the way the worker
        // pool pipelines a query across disks — must reproduce the
        // canonical forest search bit-for-bit: same neighbors, same stats.
        let dim = 8;
        let pts = ClusteredGenerator::new(dim, 5, 0.04).generate(2400, 31);
        let trees: Vec<SpatialTree> = (0..6)
            .map(|d| {
                let items: Vec<(Point, u64)> = pts
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 6 == d)
                    .map(|(i, p)| (p.clone(), i as u64))
                    .collect();
                build_tree_items(&items, dim)
            })
            .collect();
        let refs: Vec<&SpatialTree> = trees.iter().collect();
        for (qi, q) in UniformGenerator::new(dim)
            .generate(12, 32)
            .iter()
            .enumerate()
        {
            let k = 1 + qi % 10;
            let (want, want_stats) = forest_knn_traced(&refs, q, k, KnnAlgorithm::Rkv);
            let mut stats = vec![SearchStats::default(); refs.len()];
            let mut cursor = ForestCursor::new(k);
            let itinerary = forest_itinerary(&refs, q);
            for (i, &(min_dist, ti)) in itinerary.iter().enumerate() {
                if cursor.prunable(min_dist) {
                    for &(_, tj) in &itinerary[i..] {
                        stats[tj].pruned += 1;
                    }
                    break;
                }
                cursor.visit(refs[ti], q, &mut stats[ti]);
            }
            let got = cursor.finish();
            assert_eq!(got, want, "neighbors diverged at query {qi}");
            assert_eq!(stats, want_stats, "stats diverged at query {qi}");
        }
    }

    #[test]
    fn tiered_scans_are_bit_identical_to_brute_force() {
        // The tentpole contract: every tier returns the same answers, bit
        // for bit — the cheap tiers only skip certified-far rows and
        // re-rank survivors with the same f64 arithmetic brute force uses.
        for (dim, pts) in [
            (8, UniformGenerator::new(8).generate(1500, 41)),
            (8, ClusteredGenerator::new(8, 5, 0.04).generate(1500, 43)),
        ] {
            let tree = build_tree(&pts, dim, TreeVariant::xtree_default());
            let data: Vec<(Point, u64)> = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (p.clone(), i as u64))
                .collect();
            for q in &UniformGenerator::new(dim).generate(8, 42) {
                let want = brute_force_knn(&data, q, 7);
                for tier in [ScanTier::F64, ScanTier::F32, ScanTier::Q8] {
                    for algo in [KnnAlgorithm::Rkv, KnnAlgorithm::Hs] {
                        let (got, stats) = tree.knn_traced_tiered(q, 7, algo, None, tier);
                        assert_eq!(got.len(), want.len());
                        for (g, w) in got.iter().zip(&want) {
                            assert_eq!(
                                g.dist.to_bits(),
                                w.dist.to_bits(),
                                "{tier:?} {algo:?}: {} vs {}",
                                g.dist,
                                w.dist
                            );
                            assert_eq!(g.item, w.item, "{tier:?} {algo:?}");
                        }
                        assert!(stats.rerank_evals <= stats.lb_evals);
                        match tier {
                            ScanTier::F64 => {
                                assert_eq!(stats.lb_evals, 0);
                                assert_eq!(stats.rerank_evals, 0);
                            }
                            _ => {
                                assert!(stats.lb_evals > 0, "{tier:?} {algo:?}: phase 1 never ran")
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cheap_tiers_reduce_f64_evaluations() {
        // On uniform data (where early abandonment is weakest) the cheap
        // tiers must shift most leaf rows from f64 evaluations to
        // lower-bound evaluations.
        let dim = 8;
        let pts = UniformGenerator::new(dim).generate(2000, 51);
        let tree = build_tree(&pts, dim, TreeVariant::xtree_default());
        for tier in [ScanTier::F32, ScanTier::Q8] {
            let (mut base, mut tiered) = (0u64, 0u64);
            for q in &UniformGenerator::new(dim).generate(10, 52) {
                base += tree.knn_traced(q, 10, KnnAlgorithm::Rkv, None).1.dist_evals;
                tiered += tree
                    .knn_traced_tiered(q, 10, KnnAlgorithm::Rkv, None, tier)
                    .1
                    .dist_evals;
            }
            assert!(
                tiered * 2 <= base,
                "{tier:?}: {tiered} f64 evals vs {base} on the f64 tier"
            );
        }
    }

    #[test]
    fn tiered_partial_searches_merge_to_the_exact_answer() {
        // SharedBound + cheap tiers: the certified prune threshold is
        // derived from the bound at block start, so concurrent tightening
        // must never cost a k-nearest candidate.
        let dim = 7;
        let k = 8;
        let pts = UniformGenerator::new(dim).generate(2000, 61);
        let (left, right): (Vec<_>, Vec<_>) = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .partition(|(_, i)| i % 2 == 0);
        let lt = build_tree_items(&left, dim);
        let rt = build_tree_items(&right, dim);
        let data: Vec<(Point, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        for tier in [ScanTier::F32, ScanTier::Q8] {
            for q in &UniformGenerator::new(dim).generate(10, 62) {
                let bound = SharedBound::new();
                let (lres, _) = lt.knn_traced_tiered(q, k, KnnAlgorithm::Rkv, Some(&bound), tier);
                let (rres, _) = rt.knn_traced_tiered(q, k, KnnAlgorithm::Rkv, Some(&bound), tier);
                let mut merged: Vec<Neighbor> = lres.into_iter().chain(rres).collect();
                merged.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.item.cmp(&b.item)));
                merged.truncate(k);
                let want = brute_force_knn(&data, q, k);
                assert_eq!(merged.len(), want.len());
                for (g, w) in merged.iter().zip(&want) {
                    assert_eq!(g.dist.to_bits(), w.dist.to_bits(), "{tier:?}");
                }
            }
        }
    }

    #[test]
    fn tiered_cursor_replays_the_tiered_forest_search_exactly() {
        let dim = 8;
        let pts = ClusteredGenerator::new(dim, 5, 0.04).generate(1800, 71);
        let trees: Vec<SpatialTree> = (0..4)
            .map(|d| {
                let items: Vec<(Point, u64)> = pts
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 4 == d)
                    .map(|(i, p)| (p.clone(), i as u64))
                    .collect();
                build_tree_items(&items, dim)
            })
            .collect();
        let refs: Vec<&SpatialTree> = trees.iter().collect();
        for tier in [ScanTier::F32, ScanTier::Q8] {
            for q in &UniformGenerator::new(dim).generate(6, 72) {
                let k = 5;
                let (want, want_stats) =
                    forest_knn_traced_tiered(&refs, q, k, KnnAlgorithm::Rkv, tier);
                let mut stats = vec![SearchStats::default(); refs.len()];
                let mut cursor = ForestCursor::with_tier(k, tier);
                assert_eq!(cursor.tier(), tier);
                let itinerary = forest_itinerary(&refs, q);
                for (i, &(min_dist, ti)) in itinerary.iter().enumerate() {
                    if cursor.prunable(min_dist) {
                        for &(_, tj) in &itinerary[i..] {
                            stats[tj].pruned += 1;
                        }
                        break;
                    }
                    cursor.visit(refs[ti], q, &mut stats[ti]);
                }
                let got = cursor.finish();
                assert_eq!(got, want, "{tier:?}: neighbors diverged");
                assert_eq!(stats, want_stats, "{tier:?}: stats diverged");
            }
        }
    }

    #[test]
    fn energy_order_is_bit_identical_and_abandons_earlier() {
        use crate::params::ScanOrder;
        let dim = 8;
        for pts in [
            UniformGenerator::new(dim).generate(1600, 81),
            ClusteredGenerator::new(dim, 5, 0.04).generate(1600, 82),
        ] {
            let build = |order: ScanOrder| {
                let params = TreeParams::for_dim(dim, TreeVariant::xtree_default())
                    .unwrap()
                    .with_capacities(16, 8)
                    .unwrap()
                    .with_scan_order(order);
                let data: Vec<(Point, u64)> = pts
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (p.clone(), i as u64))
                    .collect();
                SpatialTree::bulk_load(params, data).unwrap()
            };
            let nat = build(ScanOrder::Natural);
            let en = build(ScanOrder::Energy);
            let (mut nat_ab, mut en_ab) = (0u64, 0u64);
            for q in &UniformGenerator::new(dim).generate(10, 83) {
                for tier in [ScanTier::F64, ScanTier::F32, ScanTier::Q8] {
                    let (want, ns) = nat.knn_traced_ordered(
                        q,
                        9,
                        KnnAlgorithm::Rkv,
                        None,
                        tier,
                        ScanOrder::Natural,
                    );
                    let (got, es) = en.knn_traced_ordered(
                        q,
                        9,
                        KnnAlgorithm::Rkv,
                        None,
                        tier,
                        ScanOrder::Energy,
                    );
                    assert_eq!(got.len(), want.len(), "{tier:?}");
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.dist.to_bits(), w.dist.to_bits(), "{tier:?}");
                        assert_eq!(g.item, w.item, "{tier:?}");
                    }
                    // The subset invariant holds on every tier.
                    assert!(ns.abandoned_rows <= ns.dist_evals_saved);
                    assert!(es.abandoned_rows <= es.dist_evals_saved);
                    if tier == ScanTier::F64 {
                        nat_ab += ns.abandoned_rows;
                        en_ab += es.abandoned_rows;
                    }
                }
            }
            // Both layouts abandon rows on the f64 tier; the energy-order
            // *depth* advantage is measured by ext14, not asserted here.
            assert!(nat_ab > 0, "natural f64 scan never abandoned a row");
            assert!(en_ab > 0, "energy f64 filter never abandoned a row");
        }
    }

    #[test]
    fn energy_query_knob_is_bit_identical_on_natural_trees() {
        // Asking for the energy filter on a tree stored naturally (no
        // permutations anywhere) must be a plain no-op.
        use crate::params::ScanOrder;
        let dim = 6;
        let pts = UniformGenerator::new(dim).generate(800, 91);
        let tree = build_tree(&pts, dim, TreeVariant::xtree_default());
        for q in &UniformGenerator::new(dim).generate(6, 92) {
            let (want, ws) = tree.knn_traced_ordered(
                q,
                5,
                KnnAlgorithm::Rkv,
                None,
                ScanTier::F64,
                ScanOrder::Natural,
            );
            let (got, gs) = tree.knn_traced_ordered(
                q,
                5,
                KnnAlgorithm::Rkv,
                None,
                ScanTier::F64,
                ScanOrder::Energy,
            );
            assert_eq!(got, want);
            assert_eq!(gs, ws, "no permuted leaves: stats must match exactly");
        }
    }

    #[test]
    fn brute_force_is_deterministic_on_ties() {
        let p = Point::new(vec![0.5]).unwrap();
        let data = vec![(p.clone(), 3), (p.clone(), 1), (p.clone(), 2)];
        let res = brute_force_knn(&data, &p, 2);
        assert_eq!(res[0].item, 1);
        assert_eq!(res[1].item, 2);
    }
}
