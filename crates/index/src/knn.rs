//! k-nearest-neighbor search.
//!
//! Two classical algorithms, both exact:
//!
//! * **RKV** — Roussopoulos, Kelley & Vincent \[RKV 95\]: depth-first
//!   branch-and-bound. Partitions are visited in MINDIST order; branches
//!   whose MINDIST exceeds the current k-th best distance are pruned, and
//!   for `k = 1` the MINMAXDIST bound additionally prunes partitions that
//!   provably cannot contain the nearest neighbor. This is the algorithm
//!   the paper runs on the X-tree.
//! * **HS** — Hjaltason & Samet \[HS 95\]: best-first incremental search
//!   with a global priority queue ordered by MINDIST. Optimal in the
//!   number of pages visited; applicable to any recursive partitioning.
//!
//! Both charge one page visit per node they read (supernodes charge their
//! page count), via [`SpatialTree::charge_visit`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use parsim_geometry::Point;

use crate::node::{Node, NodeId};
use crate::tree::SpatialTree;

/// Which k-NN algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KnnAlgorithm {
    /// Depth-first branch-and-bound \[RKV 95\] (the paper's choice).
    #[default]
    Rkv,
    /// Best-first incremental search \[HS 95\].
    Hs,
}

/// One answer of a k-NN query.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// The caller-supplied item id of the matching point.
    pub item: u64,
    /// The matching point.
    pub point: Point,
    /// Euclidean distance to the query.
    pub dist: f64,
}

impl SpatialTree {
    /// Finds the `k` nearest neighbors of `query`, sorted by ascending
    /// distance. Returns fewer than `k` results only if the tree holds
    /// fewer than `k` points.
    pub fn knn(&self, query: &Point, k: usize, algorithm: KnnAlgorithm) -> Vec<Neighbor> {
        assert_eq!(query.dim(), self.params().dim, "query dimension mismatch");
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        match algorithm {
            KnnAlgorithm::Rkv => self.knn_rkv(query, k),
            KnnAlgorithm::Hs => self.knn_hs(query, k),
        }
    }

    // ----- RKV ------------------------------------------------------------

    fn knn_rkv(&self, query: &Point, k: usize) -> Vec<Neighbor> {
        let mut best: BoundedMaxHeap = BoundedMaxHeap::new(k);
        self.rkv_visit(self.root_id(), query, k, &mut best);
        best.into_sorted()
    }

    fn rkv_visit(&self, id: NodeId, query: &Point, k: usize, best: &mut BoundedMaxHeap) {
        self.charge_visit(id);
        match self.node(id) {
            Node::Leaf { entries, .. } => {
                for e in entries {
                    let d2 = e.point.dist2(query);
                    best.offer(d2, e);
                }
            }
            Node::Inner { entries, .. } => {
                // Build the active branch list ordered by MINDIST.
                let mut branches: Vec<(f64, f64, NodeId)> = entries
                    .iter()
                    .map(|e| (e.mbr.min_dist2(query), e.mbr.min_max_dist2(query), e.child))
                    .collect();
                branches.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
                // MINMAXDIST pruning (valid for k = 1): no partition whose
                // MINDIST exceeds the smallest MINMAXDIST can contain the
                // nearest neighbor.
                if k == 1 {
                    let min_minmax = branches.iter().map(|b| b.1).fold(f64::INFINITY, f64::min);
                    branches.retain(|b| b.0 <= min_minmax);
                }
                for (min_dist, _, child) in branches {
                    if best.is_full() && min_dist > best.worst() {
                        break; // sorted order: everything further is pruned
                    }
                    self.rkv_visit(child, query, k, best);
                }
            }
        }
    }

    // ----- HS -------------------------------------------------------------

    fn knn_hs(&self, query: &Point, k: usize) -> Vec<Neighbor> {
        forest_knn(&[self], query, k, KnnAlgorithm::Hs)
    }
}

/// k-NN search over a **forest** of trees with a single shared pruning
/// bound — the parallel X-tree's logical search. Each tree charges its own
/// disk, so the per-disk page counts are exactly the pages a
/// globally-pruned parallel algorithm must read (never more, as would
/// happen if every disk ran an independent local search to completion).
pub fn forest_knn(
    trees: &[&SpatialTree],
    query: &Point,
    k: usize,
    algorithm: KnnAlgorithm,
) -> Vec<Neighbor> {
    if k == 0 {
        return Vec::new();
    }
    match algorithm {
        KnnAlgorithm::Rkv => forest_knn_rkv(trees, query, k),
        KnnAlgorithm::Hs => forest_knn_hs(trees, query, k),
    }
}

/// RKV over a forest: the tree roots form a virtual root's branch list,
/// sorted by MINDIST and pruned against the shared best-k bound.
fn forest_knn_rkv(trees: &[&SpatialTree], query: &Point, k: usize) -> Vec<Neighbor> {
    let mut best = BoundedMaxHeap::new(k);
    let mut roots: Vec<(f64, &SpatialTree)> = trees
        .iter()
        .filter(|t| !t.is_empty())
        .map(|t| {
            let d = t
                .bounds()
                .map(|b| b.min_dist2(query))
                .unwrap_or(f64::INFINITY);
            (d, *t)
        })
        .collect();
    roots.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
    for (min_dist, tree) in roots {
        if best.is_full() && min_dist > best.worst() {
            break;
        }
        tree.rkv_visit(tree.root_id(), query, k, &mut best);
    }
    best.into_sorted()
}

/// HS over a forest: one shared priority queue seeded with all roots —
/// page-optimal for the whole forest.
fn forest_knn_hs(trees: &[&SpatialTree], query: &Point, k: usize) -> Vec<Neighbor> {
    let mut queue: BinaryHeap<HsEntry> = BinaryHeap::new();
    for (ti, tree) in trees.iter().enumerate() {
        if !tree.is_empty() {
            let d = tree
                .bounds()
                .map(|b| b.min_dist2(query))
                .unwrap_or(f64::INFINITY);
            queue.push(HsEntry {
                dist2: d,
                kind: HsKind::Node(ti, tree.root_id()),
            });
        }
    }
    let mut result = Vec::with_capacity(k);
    while let Some(entry) = queue.pop() {
        match entry.kind {
            HsKind::Node(ti, id) => {
                let tree = trees[ti];
                tree.charge_visit(id);
                match tree.node(id) {
                    Node::Leaf { entries, .. } => {
                        for (i, e) in entries.iter().enumerate() {
                            queue.push(HsEntry {
                                dist2: e.point.dist2(query),
                                kind: HsKind::Point(ti, id, i),
                            });
                        }
                    }
                    Node::Inner { entries, .. } => {
                        for e in entries {
                            queue.push(HsEntry {
                                dist2: e.mbr.min_dist2(query),
                                kind: HsKind::Node(ti, e.child),
                            });
                        }
                    }
                }
            }
            HsKind::Point(ti, leaf, idx) => {
                // When a point reaches the queue front, it is the next
                // nearest neighbor.
                if let Node::Leaf { entries, .. } = trees[ti].node(leaf) {
                    let e = &entries[idx];
                    result.push(Neighbor {
                        item: e.item,
                        point: e.point.clone(),
                        dist: entry.dist2.sqrt(),
                    });
                    if result.len() == k {
                        break;
                    }
                }
            }
        }
    }
    result
}

/// Exhaustive scan — the ground truth used by tests and the tiny-database
/// fallback.
pub fn brute_force_knn(data: &[(Point, u64)], query: &Point, k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = data
        .iter()
        .map(|(p, item)| Neighbor {
            item: *item,
            point: p.clone(),
            dist: p.dist(query),
        })
        .collect();
    all.sort_by(|a, b| {
        a.dist
            .partial_cmp(&b.dist)
            .expect("finite distances")
            .then(a.item.cmp(&b.item))
    });
    all.truncate(k);
    all
}

// ----- helpers -------------------------------------------------------------

/// Max-heap of the k best candidates seen so far (by squared distance).
struct BoundedMaxHeap {
    k: usize,
    heap: BinaryHeap<HeapNeighbor>,
}

struct HeapNeighbor {
    dist2: f64,
    item: u64,
    point: Point,
}

impl PartialEq for HeapNeighbor {
    fn eq(&self, other: &Self) -> bool {
        self.dist2 == other.dist2 && self.item == other.item
    }
}
impl Eq for HeapNeighbor {}
impl PartialOrd for HeapNeighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNeighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist2
            .partial_cmp(&other.dist2)
            .expect("finite distances")
            .then(self.item.cmp(&other.item))
    }
}

impl BoundedMaxHeap {
    fn new(k: usize) -> Self {
        BoundedMaxHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    fn offer(&mut self, dist2: f64, e: &crate::node::LeafEntry) {
        if self.heap.len() < self.k {
            self.heap.push(HeapNeighbor {
                dist2,
                item: e.item,
                point: e.point.clone(),
            });
        } else if dist2 < self.worst() {
            self.heap.push(HeapNeighbor {
                dist2,
                item: e.item,
                point: e.point.clone(),
            });
            self.heap.pop();
        }
    }

    fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// The current k-th best squared distance (∞ until full).
    fn worst(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map(|n| n.dist2).unwrap_or(f64::INFINITY)
        }
    }

    fn into_sorted(self) -> Vec<Neighbor> {
        let mut v: Vec<HeapNeighbor> = self.heap.into_vec();
        v.sort();
        v.into_iter()
            .map(|n| Neighbor {
                item: n.item,
                point: n.point,
                dist: n.dist2.sqrt(),
            })
            .collect()
    }
}

/// Priority-queue entry of the HS algorithm (min-heap via reversed Ord).
struct HsEntry {
    dist2: f64,
    kind: HsKind,
}

enum HsKind {
    Node(usize, NodeId),
    Point(usize, NodeId, usize),
}

impl PartialEq for HsEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist2 == other.dist2
    }
}
impl Eq for HsEntry {}
impl PartialOrd for HsEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HsEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the smallest dist2
        // first. Points win ties against nodes so results surface eagerly.
        other
            .dist2
            .partial_cmp(&self.dist2)
            .expect("finite distances")
            .then_with(|| {
                let rank = |k: &HsKind| match k {
                    HsKind::Point(..) => 0,
                    HsKind::Node(..) => 1,
                };
                rank(&other.kind).cmp(&rank(&self.kind))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{TreeParams, TreeVariant};
    use parsim_datagen::{ClusteredGenerator, DataGenerator, UniformGenerator};

    fn build_tree(pts: &[Point], dim: usize, variant: TreeVariant) -> SpatialTree {
        let params = TreeParams::for_dim(dim, variant)
            .unwrap()
            .with_capacities(8, 8)
            .unwrap();
        let mut t = SpatialTree::new(params);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        t
    }

    fn check_matches_brute_force(pts: &[Point], dim: usize, k: usize, algo: KnnAlgorithm) {
        let tree = build_tree(pts, dim, TreeVariant::xtree_default());
        let data: Vec<(Point, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        let queries = UniformGenerator::new(dim).generate(20, 999);
        for q in &queries {
            let got = tree.knn(q, k, algo);
            let want = brute_force_knn(&data, q, k);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want.iter()) {
                // Distances must agree exactly (same arithmetic); items may
                // differ only between equidistant points.
                assert!(
                    (g.dist - w.dist).abs() < 1e-12,
                    "k={k} algo={algo:?}: {} vs {}",
                    g.dist,
                    w.dist
                );
            }
        }
    }

    #[test]
    fn rkv_matches_brute_force_uniform() {
        let pts = UniformGenerator::new(6).generate(600, 1);
        check_matches_brute_force(&pts, 6, 1, KnnAlgorithm::Rkv);
        check_matches_brute_force(&pts, 6, 10, KnnAlgorithm::Rkv);
    }

    #[test]
    fn hs_matches_brute_force_uniform() {
        let pts = UniformGenerator::new(6).generate(600, 2);
        check_matches_brute_force(&pts, 6, 1, KnnAlgorithm::Hs);
        check_matches_brute_force(&pts, 6, 10, KnnAlgorithm::Hs);
    }

    #[test]
    fn knn_on_clustered_data() {
        let pts = ClusteredGenerator::new(8, 4, 0.03).generate(500, 3);
        check_matches_brute_force(&pts, 8, 5, KnnAlgorithm::Rkv);
        check_matches_brute_force(&pts, 8, 5, KnnAlgorithm::Hs);
    }

    #[test]
    fn knn_edge_cases() {
        let pts = UniformGenerator::new(3).generate(5, 4);
        let tree = build_tree(&pts, 3, TreeVariant::RStar);
        let q = Point::new(vec![0.5, 0.5, 0.5]).unwrap();
        // k = 0.
        assert!(tree.knn(&q, 0, KnnAlgorithm::Rkv).is_empty());
        // k > len returns everything.
        assert_eq!(tree.knn(&q, 50, KnnAlgorithm::Rkv).len(), 5);
        assert_eq!(tree.knn(&q, 50, KnnAlgorithm::Hs).len(), 5);
        // Empty tree.
        let empty = SpatialTree::new(TreeParams::for_dim(3, TreeVariant::RStar).unwrap());
        assert!(empty.knn(&q, 3, KnnAlgorithm::Hs).is_empty());
    }

    #[test]
    fn results_are_sorted_ascending() {
        let pts = UniformGenerator::new(4).generate(300, 5);
        let tree = build_tree(&pts, 4, TreeVariant::xtree_default());
        let q = Point::new(vec![0.2, 0.8, 0.5, 0.1]).unwrap();
        for algo in [KnnAlgorithm::Rkv, KnnAlgorithm::Hs] {
            let res = tree.knn(&q, 20, algo);
            assert!(res.windows(2).all(|w| w[0].dist <= w[1].dist));
        }
    }

    #[test]
    fn exact_point_query_returns_distance_zero() {
        let pts = UniformGenerator::new(5).generate(200, 6);
        let tree = build_tree(&pts, 5, TreeVariant::RStar);
        let res = tree.knn(&pts[77], 1, KnnAlgorithm::Rkv);
        assert_eq!(res[0].dist, 0.0);
        assert_eq!(res[0].item, 77);
    }

    #[test]
    fn hs_visits_no_more_pages_than_rkv() {
        // HS is page-optimal; over a workload it must not read more pages
        // than RKV.
        use parsim_storage::SimDisk;
        use std::sync::Arc;
        let dim = 8;
        let pts = UniformGenerator::new(dim).generate(2000, 7);
        let queries = UniformGenerator::new(dim).generate(20, 8);

        let count_pages = |algo: KnnAlgorithm| -> u64 {
            let disk = Arc::new(SimDisk::new(0));
            let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
            let mut t = SpatialTree::new(params).with_disk(Arc::clone(&disk));
            for (i, p) in pts.iter().enumerate() {
                t.insert(p.clone(), i as u64).unwrap();
            }
            let before = disk.read_count();
            for q in &queries {
                t.knn(q, 10, algo);
            }
            disk.read_count() - before
        };
        let hs = count_pages(KnnAlgorithm::Hs);
        let rkv = count_pages(KnnAlgorithm::Rkv);
        assert!(hs <= rkv, "HS read {hs} pages, RKV {rkv}");
    }

    #[test]
    fn brute_force_is_deterministic_on_ties() {
        let p = Point::new(vec![0.5]).unwrap();
        let data = vec![(p.clone(), 3), (p.clone(), 1), (p.clone(), 2)];
        let res = brute_force_knn(&data, &p, 2);
        assert_eq!(res[0].item, 1);
        assert_eq!(res[1].item, 2);
    }
}
