//! Welch's bucketing algorithm \[Wel 71\] — the grid-based NN search the
//! paper's Section 2 reviews first.
//!
//! The data space is divided into identical cells; each cell keeps the
//! list of points falling inside. A nearest-neighbor search visits the
//! cells in order of their distance to the query and terminates when the
//! nearest point found so far is nearer than any unvisited cell — simple,
//! and effective in low dimensions. The paper's verdict ("unfortunately,
//! the algorithm is not efficient for high-dimensional data") is
//! reproduced by the `ext5` experiment: the number of cells is `g^d`, so
//! either the grid is uselessly coarse or almost all cells are empty and
//! the queue degenerates.
//!
//! Cells are capped to [`MAX_CELLS`]; constructing a finer grid fails —
//! the same wall the paper describes (a complete binary partition of a
//! 16-d space already yields 65 536 partitions).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use parsim_geometry::Point;
use parsim_storage::SimDisk;

use crate::knn::Neighbor;
use crate::IndexError;

/// Upper bound on the total number of grid cells.
pub const MAX_CELLS: usize = 1 << 22;

/// A uniform-grid NN index with `side^dim` cells over `[0,1]^d`.
pub struct GridFile {
    dim: usize,
    side: usize,
    cells: Vec<Vec<(Point, u64)>>,
    len: usize,
    disk: Option<Arc<SimDisk>>,
}

impl GridFile {
    /// Builds the grid with `side` cells per axis.
    pub fn build(items: Vec<(Point, u64)>, side: usize) -> Result<Self, IndexError> {
        if items.is_empty() {
            return Err(IndexError::BadParams("empty data set".into()));
        }
        if side == 0 {
            return Err(IndexError::BadParams("side must be positive".into()));
        }
        let dim = items[0].0.dim();
        let cell_count = (side as u128).checked_pow(dim as u32);
        match cell_count {
            Some(c) if c <= MAX_CELLS as u128 => {}
            _ => {
                return Err(IndexError::BadParams(format!(
                    "{side}^{dim} cells exceed the limit of {MAX_CELLS} — the curse of \
                     dimensionality the paper describes"
                )))
            }
        }
        let mut grid = GridFile {
            dim,
            side,
            cells: vec![Vec::new(); cell_count.expect("checked above") as usize],
            len: items.len(),
            disk: None,
        };
        for (p, item) in items {
            if p.dim() != dim {
                return Err(IndexError::DimensionMismatch {
                    expected: dim,
                    got: p.dim(),
                });
            }
            let idx = grid.cell_of(&p);
            grid.cells[idx].push((p, item));
        }
        Ok(grid)
    }

    /// Attaches a simulated disk; every visited cell charges one page.
    pub fn with_disk(mut self, disk: Arc<SimDisk>) -> Self {
        self.disk = Some(disk);
        self
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no points are indexed (never after `build`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Fraction of cells that hold at least one point.
    pub fn occupancy(&self) -> f64 {
        self.cells.iter().filter(|c| !c.is_empty()).count() as f64 / self.cells.len() as f64
    }

    fn coord_of(&self, v: f64) -> usize {
        ((v.clamp(0.0, 1.0) * self.side as f64) as usize).min(self.side - 1)
    }

    fn cell_of(&self, p: &Point) -> usize {
        let mut idx = 0usize;
        for &c in p.iter() {
            idx = idx * self.side + self.coord_of(c);
        }
        idx
    }

    /// Squared distance from `q` to cell `coords` (per-axis clamp).
    fn cell_min_dist2(&self, q: &Point, coords: &[usize]) -> f64 {
        let w = 1.0 / self.side as f64;
        let mut acc = 0.0;
        for (i, &c) in coords.iter().enumerate() {
            let lo = c as f64 * w;
            let hi = lo + w;
            let v = q[i];
            let d = if v < lo {
                lo - v
            } else if v > hi {
                v - hi
            } else {
                continue;
            };
            acc += d * d;
        }
        acc
    }

    /// Finds the `k` nearest neighbors by visiting cells in MINDIST order
    /// (best-first over the cell lattice, expanding neighbors lazily).
    pub fn knn(&self, query: &Point, k: usize) -> Vec<Neighbor> {
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        if k == 0 {
            return Vec::new();
        }

        #[derive(PartialEq)]
        struct CellEntry(f64, Vec<usize>);
        impl Eq for CellEntry {}
        impl PartialOrd for CellEntry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for CellEntry {
            fn cmp(&self, other: &Self) -> Ordering {
                other.0.partial_cmp(&self.0).expect("finite distances")
            }
        }

        let start: Vec<usize> = query.iter().map(|&v| self.coord_of(v)).collect();
        let mut queue = BinaryHeap::new();
        let mut seen = std::collections::HashSet::new();
        queue.push(CellEntry(self.cell_min_dist2(query, &start), start.clone()));
        seen.insert(start);

        let mut best: Vec<(f64, u64, Point)> = Vec::new();
        let worst = |best: &Vec<(f64, u64, Point)>| -> f64 {
            if best.len() < k {
                f64::INFINITY
            } else {
                best.iter().map(|b| b.0).fold(0.0, f64::max)
            }
        };

        while let Some(CellEntry(dist, coords)) = queue.pop() {
            if dist > worst(&best) {
                break; // no unvisited cell can contain anything closer
            }
            if let Some(disk) = &self.disk {
                disk.touch_read(1);
            }
            let mut idx = 0usize;
            for &c in &coords {
                idx = idx * self.side + c;
            }
            for (p, item) in &self.cells[idx] {
                let d2 = p.dist2(query);
                if best.len() < k {
                    best.push((d2, *item, p.clone()));
                } else if d2 < worst(&best) {
                    let wi = best
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite"))
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    best[wi] = (d2, *item, p.clone());
                }
            }
            // Expand the 2d face neighbors lazily.
            for axis in 0..self.dim {
                for delta in [-1isize, 1] {
                    let c = coords[axis] as isize + delta;
                    if c < 0 || c as usize >= self.side {
                        continue;
                    }
                    let mut next = coords.clone();
                    next[axis] = c as usize;
                    if seen.insert(next.clone()) {
                        let d = self.cell_min_dist2(query, &next);
                        queue.push(CellEntry(d, next));
                    }
                }
            }
        }

        best.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite distances")
                .then(a.1.cmp(&b.1))
        });
        best.into_iter()
            .map(|(d2, item, point)| Neighbor {
                item,
                point,
                dist: d2.sqrt(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::brute_force_knn;
    use parsim_datagen::{DataGenerator, UniformGenerator};

    fn items(dim: usize, n: usize, seed: u64) -> Vec<(Point, u64)> {
        UniformGenerator::new(dim)
            .generate(n, seed)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect()
    }

    #[test]
    fn knn_matches_brute_force_low_dim() {
        for (dim, side) in [(2usize, 16usize), (3, 8), (5, 4)] {
            let data = items(dim, 1500, 1);
            let grid = GridFile::build(data.clone(), side).unwrap();
            for q in UniformGenerator::new(dim).generate(10, 2) {
                let got = grid.knn(&q, 6);
                let want = brute_force_knn(&data, &q, 6);
                for (g, w) in got.iter().zip(want.iter()) {
                    assert!((g.dist - w.dist).abs() < 1e-12, "dim = {dim}");
                }
            }
        }
    }

    #[test]
    fn rejects_explosive_grids() {
        // 16 cells per axis in 16-d = 2^64 cells — the paper's wall.
        let data = items(16, 10, 3);
        assert!(matches!(
            GridFile::build(data, 16),
            Err(IndexError::BadParams(_))
        ));
    }

    #[test]
    fn occupancy_collapses_in_high_dim() {
        // Even a binary grid in 16-d leaves nearly all cells empty with
        // 10k points: 2^16 cells, <= 10k occupied.
        let data = items(16, 10_000, 4);
        let grid = GridFile::build(data, 2).unwrap();
        assert_eq!(grid.cell_count(), 65_536);
        assert!(grid.occupancy() < 0.15, "occupancy {}", grid.occupancy());
        // Compare: 2-d with the same points is densely occupied.
        let data = items(2, 10_000, 4);
        let grid = GridFile::build(data, 16).unwrap();
        assert!(grid.occupancy() > 0.9);
    }

    #[test]
    fn boundary_coordinates_land_in_cells() {
        let p0 = Point::new(vec![0.0, 0.0]).unwrap();
        let p1 = Point::new(vec![1.0, 1.0]).unwrap();
        let grid = GridFile::build(vec![(p0.clone(), 0), (p1.clone(), 1)], 4).unwrap();
        let res = grid.knn(&p1, 1);
        assert_eq!(res[0].item, 1);
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn cell_accounting_counts_visits() {
        let data = items(2, 2000, 5);
        let disk = Arc::new(SimDisk::new(0));
        let grid = GridFile::build(data, 16)
            .unwrap()
            .with_disk(Arc::clone(&disk));
        let q = Point::new(vec![0.5, 0.5]).unwrap();
        grid.knn(&q, 5);
        let visited = disk.read_count();
        assert!(visited >= 1);
        assert!(visited < 256, "visited {visited} of 256 cells");
    }
}
