//! Tree statistics.

use serde::{Deserialize, Serialize};

use crate::node::Node;
use crate::tree::SpatialTree;

/// A structural summary of a tree — used by experiments and docs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeStats {
    /// Number of indexed points.
    pub points: usize,
    /// Tree height (1 = root is a leaf).
    pub height: usize,
    /// Number of leaf nodes.
    pub leaves: usize,
    /// Number of directory nodes.
    pub inner: usize,
    /// Number of directory supernodes (X-tree only).
    pub supernodes: usize,
    /// Total pages occupied by all nodes.
    pub pages: u64,
    /// Average leaf fill factor (entries / capacity).
    pub leaf_fill: f64,
}

impl SpatialTree {
    /// Computes structural statistics by scanning all live nodes.
    pub fn stats(&self) -> TreeStats {
        let mut leaves = 0usize;
        let mut inner = 0usize;
        let mut supernodes = 0usize;
        let mut pages = 0u64;
        let mut leaf_entries = 0usize;
        for node in self.iter_nodes() {
            pages += node.pages() as u64;
            match node {
                Node::Leaf { entries, .. } => {
                    leaves += 1;
                    leaf_entries += entries.len();
                }
                Node::Inner { pages: p, .. } => {
                    inner += 1;
                    if *p > 1 {
                        supernodes += 1;
                    }
                }
            }
        }
        let leaf_capacity = self.params().leaf_capacity;
        TreeStats {
            points: self.len(),
            height: self.height(),
            leaves,
            inner,
            supernodes,
            pages,
            leaf_fill: if leaves == 0 {
                0.0
            } else {
                leaf_entries as f64 / (leaves * leaf_capacity) as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::params::{TreeParams, TreeVariant};
    use crate::tree::SpatialTree;
    use parsim_datagen::{DataGenerator, UniformGenerator};

    #[test]
    fn stats_reflect_structure() {
        let params = TreeParams::for_dim(4, TreeVariant::RStar)
            .unwrap()
            .with_capacities(8, 8)
            .unwrap();
        let mut t = SpatialTree::new(params);
        for (i, p) in UniformGenerator::new(4).generate(400, 1).iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        let s = t.stats();
        assert_eq!(s.points, 400);
        assert_eq!(s.height, t.height());
        assert!(s.leaves >= 400 / 8);
        assert!(s.inner >= 1);
        assert_eq!(s.supernodes, 0);
        assert!(s.pages >= (s.leaves + s.inner) as u64);
        assert!(
            s.leaf_fill > 0.3 && s.leaf_fill <= 1.0,
            "fill {}",
            s.leaf_fill
        );
    }

    #[test]
    fn empty_tree_stats() {
        let params = TreeParams::for_dim(2, TreeVariant::RStar).unwrap();
        let t = SpatialTree::new(params);
        let s = t.stats();
        assert_eq!(s.points, 0);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.inner, 0);
        assert_eq!(s.leaf_fill, 0.0);
    }
}
