//! Tree configuration.

use parsim_storage::PAGE_SIZE;

use crate::IndexError;

/// Which index variant a [`crate::SpatialTree`] implements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TreeVariant {
    /// The classic R\*-tree \[BKSS 90\].
    RStar,
    /// The X-tree \[BKK 96\]: R\*-tree insertion plus overlap-controlled
    /// directory splits with supernode fallback.
    XTree {
        /// Maximum tolerated overlap fraction of a directory split: if the
        /// two halves of the best topological split overlap by more than
        /// this fraction of their combined volume, an overlap-minimal
        /// split is tried, and failing that a supernode is created. The
        /// X-tree paper determined 20 % to be a good threshold.
        max_overlap: f64,
    },
}

impl TreeVariant {
    /// The X-tree with its published default overlap threshold.
    pub fn xtree_default() -> Self {
        TreeVariant::XTree { max_overlap: 0.2 }
    }
}

/// Physical coordinate order of leaf scan blocks (see `DESIGN.md`,
/// "Scan order").
///
/// With [`ScanOrder::Energy`], bulk load (and every rebuild) permutes each
/// leaf's rows — and their f32/q8 mirrors — so the highest-variance
/// coordinates come first. Partial-distance sums then grow fastest early,
/// the bounded kernels' 4-lane checkpoints abandon rows sooner, and the
/// per-dimension q8 grids are computed on the same permuted layout.
/// Answers stay bit-identical to [`ScanOrder::Natural`]: the permuted f64
/// sweep is a certified *filter* (see `geometry::kernel::order_prune_bound`)
/// and every survivor is re-ranked with the canonical natural-order rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScanOrder {
    /// Rows stored in the caller's coordinate order (the default).
    #[default]
    Natural,
    /// Rows stored with coordinates sorted by descending per-leaf variance.
    Energy,
}

/// Size and fan-out parameters of a tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Dimensionality of the indexed points.
    pub dim: usize,
    /// Index variant.
    pub variant: TreeVariant,
    /// Maximum entries per single-page leaf node.
    pub leaf_capacity: usize,
    /// Maximum entries per single-page directory node.
    pub inner_capacity: usize,
    /// Minimum fill as a fraction of capacity (the R\*-tree uses 40 %).
    pub min_fill: f64,
    /// Fraction of entries removed by a forced reinsert (R\*-tree: 30 %).
    pub reinsert_fraction: f64,
    /// Physical coordinate order of bulk-loaded leaf blocks.
    pub scan_order: ScanOrder,
}

impl TreeParams {
    /// Derives page-realistic capacities for `dim`-dimensional points on
    /// 4 KB pages: a leaf entry stores the point (`8·dim` bytes) plus an
    /// item id (8 bytes); a directory entry stores an MBR (`16·dim` bytes)
    /// plus a child pointer (8 bytes).
    pub fn for_dim(dim: usize, variant: TreeVariant) -> Result<Self, IndexError> {
        if dim == 0 {
            return Err(IndexError::BadParams("dimension must be positive".into()));
        }
        let leaf_entry = 8 * dim + 8;
        let inner_entry = 16 * dim + 8;
        let leaf_capacity = (PAGE_SIZE / leaf_entry).max(4);
        let inner_capacity = (PAGE_SIZE / inner_entry).max(4);
        Ok(TreeParams {
            dim,
            variant,
            leaf_capacity,
            inner_capacity,
            min_fill: 0.4,
            reinsert_fraction: 0.3,
            scan_order: ScanOrder::Natural,
        })
    }

    /// Selects the physical coordinate order of bulk-loaded leaf blocks.
    pub fn with_scan_order(mut self, order: ScanOrder) -> Self {
        self.scan_order = order;
        self
    }

    /// Overrides the capacities — used by tests that need tiny nodes.
    pub fn with_capacities(mut self, leaf: usize, inner: usize) -> Result<Self, IndexError> {
        if leaf < 2 || inner < 2 {
            return Err(IndexError::BadParams(
                "capacities must be at least 2".into(),
            ));
        }
        self.leaf_capacity = leaf;
        self.inner_capacity = inner;
        Ok(self)
    }

    /// Minimum entry count of a leaf node (except the root).
    pub fn leaf_min(&self) -> usize {
        ((self.leaf_capacity as f64 * self.min_fill) as usize).max(1)
    }

    /// Minimum entry count of a directory node (except the root).
    pub fn inner_min(&self) -> usize {
        ((self.inner_capacity as f64 * self.min_fill) as usize).max(1)
    }

    /// Number of entries a forced reinsert removes from an overflowing
    /// leaf.
    pub fn reinsert_count(&self) -> usize {
        ((self.leaf_capacity as f64 * self.reinsert_fraction) as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_scale_with_dimension() {
        let p2 = TreeParams::for_dim(2, TreeVariant::RStar).unwrap();
        let p16 = TreeParams::for_dim(16, TreeVariant::RStar).unwrap();
        assert!(p2.leaf_capacity > p16.leaf_capacity);
        assert!(p2.inner_capacity > p16.inner_capacity);
        // 16-d: leaf entry 136 bytes -> 30 entries; inner 264 -> 15.
        assert_eq!(p16.leaf_capacity, 30);
        assert_eq!(p16.inner_capacity, 15);
    }

    #[test]
    fn minimums_respect_min_fill() {
        let p = TreeParams::for_dim(8, TreeVariant::xtree_default()).unwrap();
        assert!(p.leaf_min() >= 1);
        assert!(p.leaf_min() as f64 <= p.leaf_capacity as f64 * 0.5);
        assert!(p.inner_min() >= 1);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(TreeParams::for_dim(0, TreeVariant::RStar).is_err());
        let p = TreeParams::for_dim(4, TreeVariant::RStar).unwrap();
        assert!(p.with_capacities(1, 8).is_err());
        assert!(p.with_capacities(8, 1).is_err());
        assert!(p.with_capacities(4, 4).is_ok());
    }

    #[test]
    fn reinsert_count_is_thirty_percent() {
        let p = TreeParams::for_dim(4, TreeVariant::RStar)
            .unwrap()
            .with_capacities(10, 10)
            .unwrap();
        assert_eq!(p.reinsert_count(), 3);
    }
}
