//! Graph-based nearest-neighbor search — the second family of Section 2.
//!
//! "Graph-based algorithms precalculate some nearest-neighbors of points,
//! store the distances in a graph, and use the precalculated information
//! for a more efficient search" (the paper cites the RNG* algorithm
//! \[Ary 95\] and Voronoi-diagram methods \[PS 85\]). This module
//! implements the modern distillation of that idea: a **k-NN graph** with
//! greedy best-first descent from several seed vertices.
//!
//! Unlike every other searcher in this crate the graph search is
//! *approximate*: it can stop in a local minimum, which is why the paper's
//! partitioning-based methods (and their parallelization) won out for
//! exact multimedia retrieval. The [`GraphIndex::recall`] helper measures
//! exactly that gap.

use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;

use parsim_geometry::Point;
use parsim_storage::SimDisk;

use crate::knn::{brute_force_knn, Neighbor};

/// A k-NN graph over a point set with greedy best-first search.
pub struct GraphIndex {
    dim: usize,
    points: Vec<(Point, u64)>,
    /// `edges[v]` = indexes of the `degree` nearest neighbors of `v`.
    edges: Vec<Vec<u32>>,
    degree: usize,
    disk: Option<Arc<SimDisk>>,
}

impl GraphIndex {
    /// Builds the exact k-NN graph with `degree` edges per vertex.
    ///
    /// Construction is `O(n²)` distance computations (the paper's era
    /// precomputed such graphs offline); intended for data sets up to a
    /// few tens of thousands of points.
    ///
    /// # Panics
    ///
    /// Panics on an empty set, mixed dimensionalities, or `degree == 0`.
    pub fn build(points: Vec<(Point, u64)>, degree: usize) -> Self {
        assert!(!points.is_empty(), "empty data set");
        assert!(degree > 0, "degree must be positive");
        let dim = points[0].0.dim();
        assert!(
            points.iter().all(|(p, _)| p.dim() == dim),
            "mixed dimensionalities"
        );
        let n = points.len();
        let degree = degree.min(n - 1).max(1);
        let mut edges = Vec::with_capacity(n);
        for (i, (p, _)) in points.iter().enumerate() {
            let mut dists: Vec<(f64, u32)> = points
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(j, (q, _))| (p.dist2(q), j as u32))
                .collect();
            dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
            edges.push(dists.into_iter().take(degree).map(|(_, j)| j).collect());
        }
        GraphIndex {
            dim,
            points,
            edges,
            degree,
            disk: None,
        }
    }

    /// Attaches a simulated disk; each *expanded vertex* charges one page
    /// (its adjacency list plus point must be fetched).
    pub fn with_disk(mut self, disk: Arc<SimDisk>) -> Self {
        self.disk = Some(disk);
        self
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points are indexed (never after `build`).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Out-degree of the graph.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Approximate k-NN: beam (best-first) search over the graph from
    /// `seeds` deterministic entry vertices with a candidate beam of width
    /// `ef ≥ k` — wider beams trade pages for recall.
    pub fn knn_approx(&self, query: &Point, k: usize, seeds: usize, ef: usize) -> Vec<Neighbor> {
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        if k == 0 {
            return Vec::new();
        }
        #[derive(PartialEq)]
        struct Cand(f64, u32);
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.0.partial_cmp(&self.0).expect("finite distances")
            }
        }

        let n = self.points.len();
        let mut visited: HashSet<u32> = HashSet::new();
        let mut frontier: BinaryHeap<Cand> = BinaryHeap::new();
        // Deterministic spread of entry points.
        let seeds = seeds.clamp(1, n);
        for s in 0..seeds {
            let v = (s * n / seeds) as u32;
            if visited.insert(v) {
                frontier.push(Cand(self.points[v as usize].0.dist2(query), v));
            }
        }

        // Beam of the `ef` best candidates seen; the search continues while
        // the frontier still holds something closer than the beam's worst.
        let ef = ef.max(k);
        let mut beam: Vec<(f64, u32)> = Vec::new();
        let worst = |beam: &Vec<(f64, u32)>| -> f64 {
            if beam.len() < ef {
                f64::INFINITY
            } else {
                beam.iter().map(|b| b.0).fold(0.0, f64::max)
            }
        };
        while let Some(Cand(d, v)) = frontier.pop() {
            if d > worst(&beam) {
                break;
            }
            if let Some(disk) = &self.disk {
                disk.touch_read(1);
            }
            // Record v in the beam.
            if beam.len() < ef {
                beam.push((d, v));
            } else {
                let wi = beam
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite"))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                if d < beam[wi].0 {
                    beam[wi] = (d, v);
                }
            }
            for &u in &self.edges[v as usize] {
                if visited.insert(u) {
                    frontier.push(Cand(self.points[u as usize].0.dist2(query), u));
                }
            }
        }

        beam.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        beam.truncate(k);
        beam.into_iter()
            .map(|(d2, v)| {
                let (p, item) = &self.points[v as usize];
                Neighbor {
                    item: *item,
                    point: p.clone(),
                    dist: d2.sqrt(),
                }
            })
            .collect()
    }

    /// Fraction of the true `k` nearest neighbors the approximate search
    /// returns, averaged over `queries`.
    pub fn recall(&self, queries: &[Point], k: usize, seeds: usize, ef: usize) -> f64 {
        let mut hits = 0usize;
        let mut total = 0usize;
        for q in queries {
            let truth: HashSet<u64> = brute_force_knn(&self.points, q, k)
                .into_iter()
                .map(|nb| nb.item)
                .collect();
            let got = self.knn_approx(q, k, seeds, ef);
            hits += got.iter().filter(|nb| truth.contains(&nb.item)).count();
            total += truth.len();
        }
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_datagen::{DataGenerator, UniformGenerator};

    fn items(dim: usize, n: usize, seed: u64) -> Vec<(Point, u64)> {
        UniformGenerator::new(dim)
            .generate(n, seed)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect()
    }

    #[test]
    fn graph_edges_are_true_nearest_neighbors() {
        let data = items(4, 200, 1);
        let g = GraphIndex::build(data.clone(), 5);
        assert_eq!(g.degree(), 5);
        for (i, (p, _)) in data.iter().enumerate().take(10) {
            let truth: Vec<u64> = brute_force_knn(&data, p, 6)
                .into_iter()
                .skip(1) // the point itself
                .map(|nb| nb.item)
                .collect();
            for &e in &g.edges[i] {
                assert!(truth.contains(&(e as u64)), "vertex {i} edge {e}");
            }
        }
    }

    #[test]
    fn high_recall_with_generous_budget() {
        let data = items(6, 2_000, 2);
        let g = GraphIndex::build(data, 12);
        let queries = UniformGenerator::new(6).generate(20, 3);
        let r = g.recall(&queries, 10, 8, 400);
        assert!(r > 0.9, "recall {r}");
    }

    #[test]
    fn recall_improves_with_beam_width() {
        let data = items(8, 1_500, 4);
        let g = GraphIndex::build(data, 10);
        let queries = UniformGenerator::new(8).generate(15, 5);
        let tight = g.recall(&queries, 10, 4, 10);
        let generous = g.recall(&queries, 10, 4, 200);
        assert!(generous >= tight, "tight {tight} vs generous {generous}");
        assert!(generous > 0.9, "generous recall {generous}");
    }

    #[test]
    fn search_is_approximate_not_exact() {
        // With a starved budget the greedy search misses neighbors — the
        // paper's reason to prefer exact partitioning methods.
        let data = items(10, 2_000, 6);
        let g = GraphIndex::build(data, 6);
        let queries = UniformGenerator::new(10).generate(25, 7);
        let r = g.recall(&queries, 10, 1, 10);
        assert!(r < 1.0, "starved search should not be perfect");
    }

    #[test]
    fn page_accounting_counts_expansions() {
        let data = items(5, 500, 8);
        let disk = Arc::new(SimDisk::new(0));
        let g = GraphIndex::build(data, 8).with_disk(Arc::clone(&disk));
        let q = Point::new(vec![0.5; 5]).unwrap();
        g.knn_approx(&q, 5, 4, 20);
        let expanded = disk.read_count();
        assert!(expanded > 0);
        // Expansions are bounded by the visited set, which the beam keeps
        // near ef plus its frontier fringe.
        assert!(expanded <= 500, "expanded {expanded}");
    }

    #[test]
    fn small_sets_and_edge_parameters() {
        let data = items(3, 5, 9);
        let g = GraphIndex::build(data, 100); // degree capped at n-1
        assert_eq!(g.degree(), 4);
        let q = Point::new(vec![0.1; 3]).unwrap();
        assert!(g.knn_approx(&q, 0, 1, 10).is_empty());
        let all = g.knn_approx(&q, 10, 5, 100);
        assert_eq!(all.len(), 5);
    }
}
