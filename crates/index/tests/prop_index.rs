//! Property tests of the spatial index.

use proptest::prelude::*;

use parsim_geometry::{HyperRect, Point};
use parsim_index::knn::{brute_force_knn, forest_knn};
use parsim_index::{KnnAlgorithm, SpatialTree, TreeParams, TreeVariant};

fn arb_points(dim: usize, range: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        prop::collection::vec(0.0f64..1.0, dim).prop_map(Point::from_vec),
        range,
    )
}

fn small_params(dim: usize, variant: TreeVariant) -> TreeParams {
    TreeParams::for_dim(dim, variant)
        .unwrap()
        .with_capacities(5, 5)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Bulk loading and incremental insertion produce trees with the same
    /// query answers.
    #[test]
    fn bulk_and_insert_agree(pts in arb_points(4, 20..150), q in prop::collection::vec(0.0f64..1.0, 4)) {
        let q = Point::from_vec(q);
        let items: Vec<(Point, u64)> = pts.iter().enumerate().map(|(i, p)| (p.clone(), i as u64)).collect();

        let bulk = SpatialTree::bulk_load(small_params(4, TreeVariant::xtree_default()), items.clone()).unwrap();
        bulk.validate();
        let mut inc = SpatialTree::new(small_params(4, TreeVariant::xtree_default()));
        for (p, id) in &items {
            inc.insert(p.clone(), *id).unwrap();
        }
        inc.validate();

        let a = bulk.knn(&q, 7, KnnAlgorithm::Hs);
        let b = inc.knn(&q, 7, KnnAlgorithm::Hs);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x.dist - y.dist).abs() < 1e-12);
        }
    }

    /// A forest of trees answers exactly like one tree over the union.
    #[test]
    fn forest_equals_union(
        pts in arb_points(5, 30..200),
        splits in prop::collection::vec(0usize..4, 200),
        q in prop::collection::vec(0.0f64..1.0, 5),
    ) {
        let q = Point::from_vec(q);
        let items: Vec<(Point, u64)> = pts.iter().enumerate().map(|(i, p)| (p.clone(), i as u64)).collect();
        let want = brute_force_knn(&items, &q, 9);

        // Partition arbitrarily into 4 trees.
        let mut parts: Vec<Vec<(Point, u64)>> = vec![Vec::new(); 4];
        for (i, item) in items.iter().enumerate() {
            parts[splits[i % splits.len()]].push(item.clone());
        }
        let trees: Vec<SpatialTree> = parts
            .into_iter()
            .map(|part| {
                SpatialTree::bulk_load(small_params(5, TreeVariant::RStar), part).unwrap()
            })
            .collect();
        let refs: Vec<&SpatialTree> = trees.iter().collect();
        for algo in [KnnAlgorithm::Rkv, KnnAlgorithm::Hs] {
            let got = forest_knn(&refs, &q, 9, algo);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want.iter()) {
                prop_assert!((g.dist - w.dist).abs() < 1e-12);
            }
        }
    }

    /// Window queries match a linear scan for arbitrary windows.
    #[test]
    fn window_matches_scan(
        pts in arb_points(3, 20..200),
        a in prop::collection::vec(0.0f64..1.0, 3),
        b in prop::collection::vec(0.0f64..1.0, 3),
    ) {
        let lo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
        let hi: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
        let window = HyperRect::new(lo, hi).unwrap();
        let items: Vec<(Point, u64)> = pts.iter().enumerate().map(|(i, p)| (p.clone(), i as u64)).collect();
        let tree = SpatialTree::bulk_load(small_params(3, TreeVariant::RStar), items).unwrap();
        let mut got: Vec<u64> = tree.window_query(&window).iter().map(|n| n.item).collect();
        got.sort_unstable();
        let want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| window.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Mixed insert/delete sequences preserve every structural invariant
    /// and the exact point multiset.
    #[test]
    fn churn_preserves_invariants(
        pts in arb_points(4, 40..120),
        ops in prop::collection::vec(any::<bool>(), 150),
    ) {
        let mut tree = SpatialTree::new(small_params(4, TreeVariant::xtree_default()));
        let mut live: Vec<(Point, u64)> = Vec::new();
        let mut next_id = 0u64;
        for (op_idx, p) in pts.iter().enumerate() {
            let delete = ops[op_idx % ops.len()] && !live.is_empty();
            if delete {
                let (dp, id) = live.swap_remove(live.len() / 2);
                tree.delete(&dp, id).unwrap();
            } else {
                tree.insert(p.clone(), next_id).unwrap();
                live.push((p.clone(), next_id));
                next_id += 1;
            }
        }
        tree.validate();
        prop_assert_eq!(tree.len(), live.len());
        // Every live point is findable at distance zero.
        for (p, id) in live.iter().take(10) {
            let res = tree.knn(p, 1, KnnAlgorithm::Rkv);
            prop_assert_eq!(res[0].dist, 0.0);
            let _ = id;
        }
    }
}
