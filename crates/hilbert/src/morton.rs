//! The Morton (Z-order) curve.

use crate::CurveError;

/// The d-dimensional Z-order (Morton) curve on a `2^order`-per-side grid.
///
/// The curve position is obtained by bit-interleaving the coordinates,
/// most-significant bits first. Z-order preserves locality less well than
/// the Hilbert curve (consecutive positions can be far apart at the "seams")
/// but is far cheaper to compute; it serves as a comparison curve in tests
/// and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZOrderCurve {
    dim: usize,
    order: u32,
}

impl ZOrderCurve {
    /// Creates a Z-order curve over a d-dimensional grid with `2^order`
    /// cells per side.
    pub fn new(dim: usize, order: u32) -> Result<Self, CurveError> {
        if dim == 0 {
            return Err(CurveError::ZeroDimensional);
        }
        if order == 0 {
            return Err(CurveError::ZeroOrder);
        }
        let bits = dim as u32 * order;
        if bits > 128 {
            return Err(CurveError::TooManyBits { requested: bits });
        }
        Ok(ZOrderCurve { dim, order })
    }

    /// Dimensionality of the grid.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Grid order (bits per coordinate).
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Number of cells along each axis, `2^order`.
    pub fn side(&self) -> u64 {
        1u64 << self.order
    }

    /// Total number of cells, `2^(dim*order)`.
    pub fn cell_count(&self) -> u128 {
        1u128 << (self.dim as u32 * self.order)
    }

    /// Maps grid coordinates to the curve position by bit interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `coords.len() != dim` or any coordinate is out of range.
    pub fn encode(&self, coords: &[u64]) -> u128 {
        assert_eq!(coords.len(), self.dim, "coordinate count mismatch");
        for &c in coords {
            assert!(c < self.side(), "coordinate {c} out of range");
        }
        let mut index: u128 = 0;
        for bit in (0..self.order).rev() {
            // Interleave with the last coordinate most significant, which
            // yields the conventional "Z" visit order in two dimensions.
            for &c in coords.iter().rev() {
                index = (index << 1) | ((c >> bit) & 1) as u128;
            }
        }
        index
    }

    /// Inverse of [`ZOrderCurve::encode`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn decode(&self, index: u128) -> Vec<u64> {
        assert!(index < self.cell_count(), "index out of range");
        let mut coords = vec![0u64; self.dim];
        let total_bits = self.dim as u32 * self.order;
        for pos in 0..total_bits {
            // Bits were emitted MSB-first, dimensions in reverse order
            // within each row (see `encode`).
            let row = pos / self.dim as u32;
            let col = self.dim - 1 - (pos % self.dim as u32) as usize;
            let bit = (index >> (total_bits - 1 - pos)) & 1;
            coords[col] |= (bit as u64) << (self.order - 1 - row);
        }
        coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_order_2d_order1() {
        // The classic "Z" visit order: (0,0) (1,0) (0,1) (1,1).
        let z = ZOrderCurve::new(2, 1).unwrap();
        assert_eq!(z.encode(&[0, 0]), 0);
        assert_eq!(z.encode(&[1, 0]), 1);
        assert_eq!(z.encode(&[0, 1]), 2);
        assert_eq!(z.encode(&[1, 1]), 3);
    }

    #[test]
    fn z_order_round_trip_exhaustive() {
        for (dim, order) in [(1, 6), (2, 4), (3, 3), (4, 2)] {
            let z = ZOrderCurve::new(dim, order).unwrap();
            for idx in 0..z.cell_count() {
                assert_eq!(z.encode(&z.decode(idx)), idx, "dim={dim} order={order}");
            }
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(ZOrderCurve::new(0, 1), Err(CurveError::ZeroDimensional));
        assert_eq!(ZOrderCurve::new(1, 0), Err(CurveError::ZeroOrder));
        assert!(matches!(
            ZOrderCurve::new(65, 2),
            Err(CurveError::TooManyBits { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_rejects_large_coordinate() {
        ZOrderCurve::new(2, 2).unwrap().encode(&[4, 0]);
    }
}
