//! Gray-code helpers used by the space-filling curves.

/// The binary reflected Gray code of `v`.
#[inline]
pub fn gray(v: u128) -> u128 {
    v ^ (v >> 1)
}

/// Inverse of [`gray`]: recovers `v` from its Gray code.
#[inline]
pub fn gray_inverse(mut g: u128) -> u128 {
    let mut shift = 1;
    while shift < 128 {
        g ^= g >> shift;
        shift <<= 1;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_first_values() {
        let expected = [0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100];
        for (v, &g) in expected.iter().enumerate() {
            assert_eq!(gray(v as u128), g);
        }
    }

    #[test]
    fn gray_adjacent_values_differ_in_one_bit() {
        for v in 0u128..1024 {
            let diff = gray(v) ^ gray(v + 1);
            assert_eq!(diff.count_ones(), 1, "v = {v}");
        }
    }

    #[test]
    fn gray_round_trip() {
        for v in 0u128..4096 {
            assert_eq!(gray_inverse(gray(v)), v);
        }
        // And some large values.
        for v in [u128::MAX, u128::MAX / 3, 1u128 << 127, 0xdead_beef_cafe] {
            assert_eq!(gray_inverse(gray(v)), v);
        }
    }
}
