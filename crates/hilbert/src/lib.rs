//! d-dimensional space-filling curves.
//!
//! Faloutsos and Bhagwat \[FB 93\] decluster data by mapping each grid cell
//! to its position along the **Hilbert curve** and assigning cell `c` to disk
//! `hilbert(c) mod n`. The Hilbert curve preserves spatial proximity better
//! than any other known space-filling curve, which makes this the strongest
//! classical baseline the paper compares against.
//!
//! This crate implements
//!
//! * [`HilbertCurve`] — the d-dimensional Hilbert curve for any `dim ≥ 1`
//!   and grid order `order ≥ 1` with `dim · order ≤ 128`, using Skilling's
//!   compact transposition algorithm (inverse included), and
//! * [`ZOrderCurve`] — the Morton / Z-order curve, a cheaper
//!   locality-preserving mapping used for comparisons and tests.
//!
//! Both curves are exact bijections between grid coordinates and curve
//! positions; round-tripping is tested exhaustively for small grids and by
//! property tests for large ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gray;
pub mod morton;
pub mod skilling;

pub use morton::ZOrderCurve;
pub use skilling::HilbertCurve;

/// Errors produced by curve constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CurveError {
    /// `dim` was zero.
    ZeroDimensional,
    /// `order` was zero.
    ZeroOrder,
    /// `dim * order` exceeds the 128 index bits available.
    TooManyBits {
        /// The requested total bit count.
        requested: u32,
    },
}

impl std::fmt::Display for CurveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CurveError::ZeroDimensional => write!(f, "curve dimension must be positive"),
            CurveError::ZeroOrder => write!(f, "curve order must be positive"),
            CurveError::TooManyBits { requested } => {
                write!(f, "dim * order = {requested} exceeds the 128 index bits")
            }
        }
    }
}

impl std::error::Error for CurveError {}
