//! The d-dimensional Hilbert curve via Skilling's transposition algorithm.
//!
//! John Skilling, *Programming the Hilbert curve*, AIP Conf. Proc. 707
//! (2004): the Hilbert index of a grid cell is computed by an in-place
//! bit-twiddling transform of the coordinate vector, followed by bit
//! interleaving. Both directions run in `O(dim · order)` with no tables,
//! which is what makes Hilbert declustering practical in high dimensions.

use crate::CurveError;

/// The d-dimensional Hilbert curve on a grid with `2^order` cells per side.
///
/// The curve visits every cell of the grid exactly once and **consecutive
/// curve positions are always face-adjacent cells** (they differ by one in
/// exactly one coordinate) — the locality property that makes
/// `disk = hilbert(cell) mod n` a good low-dimensional declustering
/// \[FB 93\].
///
/// ```
/// use parsim_hilbert::HilbertCurve;
///
/// let h = HilbertCurve::new(3, 2).unwrap(); // 3-d, 4 cells per side
/// let cell = [2u64, 0, 3];
/// let position = h.encode(&cell);
/// assert_eq!(h.decode(position), cell);
/// // Consecutive positions are face-adjacent.
/// let next = h.decode(position + 1);
/// let l1: u64 = cell.iter().zip(&next).map(|(a, b)| a.abs_diff(*b)).sum();
/// assert_eq!(l1, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HilbertCurve {
    dim: usize,
    order: u32,
}

impl HilbertCurve {
    /// Creates a Hilbert curve over a d-dimensional grid with `2^order`
    /// cells per side. Requires `dim ≥ 1`, `order ≥ 1` and
    /// `dim · order ≤ 128`.
    pub fn new(dim: usize, order: u32) -> Result<Self, CurveError> {
        if dim == 0 {
            return Err(CurveError::ZeroDimensional);
        }
        if order == 0 {
            return Err(CurveError::ZeroOrder);
        }
        let bits = dim as u32 * order;
        if bits > 128 {
            return Err(CurveError::TooManyBits { requested: bits });
        }
        Ok(HilbertCurve { dim, order })
    }

    /// Dimensionality of the grid.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Grid order (bits per coordinate).
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Number of cells along each axis, `2^order`.
    pub fn side(&self) -> u64 {
        1u64 << self.order
    }

    /// Total number of cells, `2^(dim·order)`.
    pub fn cell_count(&self) -> u128 {
        1u128 << (self.dim as u32 * self.order)
    }

    /// Maps grid coordinates to the Hilbert curve position.
    ///
    /// # Panics
    ///
    /// Panics if `coords.len() != dim` or any coordinate `≥ 2^order`.
    pub fn encode(&self, coords: &[u64]) -> u128 {
        assert_eq!(coords.len(), self.dim, "coordinate count mismatch");
        for &c in coords {
            assert!(c < self.side(), "coordinate {c} out of range");
        }
        let mut x: Vec<u64> = coords.to_vec();
        self.axes_to_transpose(&mut x);
        self.transpose_to_index(&x)
    }

    /// Inverse of [`HilbertCurve::encode`].
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ 2^(dim·order)`.
    pub fn decode(&self, index: u128) -> Vec<u64> {
        assert!(index < self.cell_count(), "index out of range");
        let mut x = self.index_to_transpose(index);
        self.transpose_to_axes(&mut x);
        x
    }

    /// Skilling's `AxestoTranspose`: converts grid coordinates into the
    /// "transposed" Hilbert index representation in place.
    fn axes_to_transpose(&self, x: &mut [u64]) {
        let n = self.dim;
        let m = 1u64 << (self.order - 1);

        // Inverse undo of the excess Gray-code work.
        let mut q = m;
        while q > 1 {
            let p = q - 1;
            for i in 0..n {
                if x[i] & q != 0 {
                    x[0] ^= p; // invert low bits of x[0]
                } else {
                    let t = (x[0] ^ x[i]) & p; // exchange low bits
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q >>= 1;
        }

        // Gray encode.
        for i in 1..n {
            x[i] ^= x[i - 1];
        }
        let mut t = 0u64;
        let mut q = m;
        while q > 1 {
            if x[n - 1] & q != 0 {
                t ^= q - 1;
            }
            q >>= 1;
        }
        for xi in x.iter_mut() {
            *xi ^= t;
        }
    }

    /// Skilling's `TransposetoAxes`: the exact inverse of
    /// [`Self::axes_to_transpose`].
    fn transpose_to_axes(&self, x: &mut [u64]) {
        let n = self.dim;
        let big_n = 2u64 << (self.order - 1);

        // Gray decode by H ^ (H/2).
        let mut t = x[n - 1] >> 1;
        for i in (1..n).rev() {
            x[i] ^= x[i - 1];
        }
        x[0] ^= t;

        // Undo the excess work.
        let mut q = 2u64;
        while q != big_n {
            let p = q - 1;
            for i in (0..n).rev() {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q <<= 1;
        }
    }

    /// Packs the transposed representation into a single index: bit
    /// `order-1-row` of `x[col]` becomes bit
    /// `(order-1-row)·dim + (dim-1-col)` of the index (MSB-first
    /// interleaving across dimensions).
    fn transpose_to_index(&self, x: &[u64]) -> u128 {
        let mut index: u128 = 0;
        for row in (0..self.order).rev() {
            for &xi in x.iter() {
                index = (index << 1) | ((xi >> row) & 1) as u128;
            }
        }
        index
    }

    /// Inverse of [`Self::transpose_to_index`].
    fn index_to_transpose(&self, index: u128) -> Vec<u64> {
        let n = self.dim;
        let mut x = vec![0u64; n];
        let total_bits = n as u32 * self.order;
        for pos in 0..total_bits {
            let row = pos / n as u32;
            let col = (pos % n as u32) as usize;
            let bit = (index >> (total_bits - 1 - pos)) & 1;
            x[col] |= (bit as u64) << (self.order - 1 - row);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// L1 distance between two grid cells.
    fn l1(a: &[u64], b: &[u64]) -> u64 {
        a.iter().zip(b).map(|(&x, &y)| x.abs_diff(y)).sum()
    }

    #[test]
    fn hilbert_2d_order1_is_the_u_shape() {
        let h = HilbertCurve::new(2, 1).unwrap();
        let visit: Vec<Vec<u64>> = (0..4).map(|i| h.decode(i)).collect();
        // Order-1 Hilbert curve visits the four quadrants in a U.
        assert_eq!(visit[0], vec![0, 0]);
        assert_eq!(visit[1], vec![0, 1]);
        assert_eq!(visit[2], vec![1, 1]);
        assert_eq!(visit[3], vec![1, 0]);
    }

    #[test]
    fn starts_at_the_origin() {
        for (dim, order) in [(2, 3), (3, 2), (5, 1), (8, 1)] {
            let h = HilbertCurve::new(dim, order).unwrap();
            assert_eq!(h.decode(0), vec![0; dim], "dim={dim} order={order}");
        }
    }

    #[test]
    fn round_trip_exhaustive_small_grids() {
        for (dim, order) in [(1, 6), (2, 4), (3, 3), (4, 2), (6, 2), (10, 1)] {
            let h = HilbertCurve::new(dim, order).unwrap();
            for idx in 0..h.cell_count() {
                let coords = h.decode(idx);
                assert_eq!(h.encode(&coords), idx, "dim={dim} order={order} idx={idx}");
            }
        }
    }

    #[test]
    fn consecutive_positions_are_face_adjacent() {
        // The defining Hilbert property: |h1 - h2| = 1 implies the cells
        // share a (d-1)-face, i.e. L1 distance 1.
        for (dim, order) in [(2, 4), (3, 3), (4, 2), (5, 2)] {
            let h = HilbertCurve::new(dim, order).unwrap();
            let mut prev = h.decode(0);
            for idx in 1..h.cell_count() {
                let cur = h.decode(idx);
                assert_eq!(
                    l1(&prev, &cur),
                    1,
                    "dim={dim} order={order} idx={idx}: {prev:?} -> {cur:?}"
                );
                prev = cur;
            }
        }
    }

    #[test]
    fn visits_every_cell_once() {
        let h = HilbertCurve::new(3, 2).unwrap();
        let mut seen = vec![false; h.cell_count() as usize];
        for idx in 0..h.cell_count() {
            let coords = h.decode(idx);
            let flat: usize = coords
                .iter()
                .fold(0usize, |acc, &c| (acc << h.order()) | c as usize);
            assert!(!seen[flat], "cell visited twice");
            seen[flat] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(HilbertCurve::new(0, 1), Err(CurveError::ZeroDimensional));
        assert_eq!(HilbertCurve::new(2, 0), Err(CurveError::ZeroOrder));
        assert!(matches!(
            HilbertCurve::new(13, 10),
            Err(CurveError::TooManyBits { requested: 130 })
        ));
        assert!(HilbertCurve::new(64, 2).is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_rejects_large_coordinate() {
        HilbertCurve::new(2, 2).unwrap().encode(&[0, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_rejects_large_index() {
        HilbertCurve::new(2, 1).unwrap().decode(4);
    }

    #[test]
    fn hilbert_beats_zorder_on_locality() {
        // Average L1 jump between consecutive curve positions: Hilbert is
        // exactly 1, Z-order is strictly larger (the "seams").
        use crate::morton::ZOrderCurve;
        let h = HilbertCurve::new(2, 4).unwrap();
        let z = ZOrderCurve::new(2, 4).unwrap();
        let jump = |decode: &dyn Fn(u128) -> Vec<u64>, count: u128| -> f64 {
            let mut total = 0u64;
            let mut prev = decode(0);
            for i in 1..count {
                let cur = decode(i);
                total += l1(&prev, &cur);
                prev = cur;
            }
            total as f64 / (count - 1) as f64
        };
        let hilbert_jump = jump(&|i| h.decode(i), h.cell_count());
        let z_jump = jump(&|i| z.decode(i), z.cell_count());
        assert_eq!(hilbert_jump, 1.0);
        assert!(z_jump > 1.0);
    }
}
