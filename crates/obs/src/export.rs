//! Deterministic text renderings of a [`RegistrySnapshot`].
//!
//! Both exporters are pure functions of the snapshot: samples are
//! rendered in registration order, labels in the order they were given,
//! and nothing time-dependent (no timestamps, no hostnames) is ever
//! emitted. Two snapshots that compare equal render to byte-identical
//! strings, which lets test suites golden-file exporter output and assert
//! cross-run determinism of a seeded workload.
//!
//! Histogram buckets are rendered **sparsely**: a cumulative `le` line is
//! emitted only when its bucket received observations, plus a final
//! `+Inf` line. The cumulative counts stay monotone, so the rendering is
//! still a valid Prometheus histogram — just without hundreds of empty
//! bucket lines.

use crate::histogram::HistogramSnapshot;
use crate::registry::{Labels, MetricSample, MetricValue, RegistrySnapshot};

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn type_of(value: &MetricValue) -> &'static str {
    match value {
        MetricValue::Counter(_) => "counter",
        MetricValue::Gauge(_) => "gauge",
        MetricValue::Histogram(_) => "histogram",
    }
}

fn push_histogram_lines(out: &mut String, s: &MetricSample, h: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (i, &b) in h.buckets.iter().enumerate() {
        if b == 0 {
            continue;
        }
        cumulative += b;
        let le = h.cfg.upper_bound(i).to_string();
        let labels = render_labels(&s.labels, Some(("le", &le)));
        out.push_str(&format!("{}_bucket{labels} {cumulative}\n", s.name));
    }
    let inf = render_labels(&s.labels, Some(("le", "+Inf")));
    out.push_str(&format!("{}_bucket{inf} {}\n", s.name, h.count));
    out.push_str(&format!(
        "{}_sum{} {}\n",
        s.name,
        render_labels(&s.labels, None),
        h.sum
    ));
    out.push_str(&format!(
        "{}_count{} {}\n",
        s.name,
        render_labels(&s.labels, None),
        h.count
    ));
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// `# HELP` / `# TYPE` headers are emitted once per metric name, at its
/// first occurrence; same-named instruments with different label sets
/// share the header, exactly as Prometheus expects.
pub fn prometheus_text(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for s in &snapshot.samples {
        if last_name != Some(s.name.as_str()) {
            out.push_str(&format!("# HELP {} {}\n", s.name, s.help));
            out.push_str(&format!("# TYPE {} {}\n", s.name, type_of(&s.value)));
            last_name = Some(s.name.as_str());
        }
        match &s.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!(
                    "{}{} {v}\n",
                    s.name,
                    render_labels(&s.labels, None)
                ));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {v}\n",
                    s.name,
                    render_labels(&s.labels, None)
                ));
            }
            MetricValue::Histogram(h) => push_histogram_lines(&mut out, s, h),
        }
    }
    out
}

fn json_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &Labels) -> String {
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

/// Renders a snapshot as a JSON document.
///
/// The layout is `{"metrics": [...]}` with one object per sample in
/// registration order. Histograms render their non-empty buckets as
/// `[index, upper_bound, count]` triples — sparse, like the Prometheus
/// rendering.
pub fn to_json(snapshot: &RegistrySnapshot) -> String {
    let mut entries = Vec::with_capacity(snapshot.samples.len());
    for s in &snapshot.samples {
        let head = format!(
            "{{\"name\":\"{}\",\"help\":\"{}\",\"labels\":{},\"type\":\"{}\",",
            json_escape(&s.name),
            json_escape(&s.help),
            json_labels(&s.labels),
            type_of(&s.value)
        );
        let body = match &s.value {
            MetricValue::Counter(v) => format!("\"value\":{v}}}"),
            MetricValue::Gauge(v) => format!("\"value\":{v}}}"),
            MetricValue::Histogram(h) => {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b > 0)
                    .map(|(i, &b)| format!("[{i},{},{b}]", h.cfg.upper_bound(i)))
                    .collect();
                format!(
                    "\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                    h.count,
                    h.sum,
                    buckets.join(",")
                )
            }
        };
        entries.push(format!("  {head}{body}"));
    }
    format!("{{\"metrics\":[\n{}\n]}}\n", entries.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::HistogramConfig;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        let c0 = reg.counter("pages_total", "pages served", &[("disk", "0")]);
        let c1 = reg.counter("pages_total", "pages served", &[("disk", "1")]);
        let g = reg.gauge("queue_depth", "tasks waiting", &[("disk", "0")]);
        let h = reg.histogram(
            "latency_micros",
            "modeled latency",
            &[],
            HistogramConfig::new(2, 8),
        );
        c0.add(7);
        c1.add(3);
        g.set(2);
        h.record(1);
        h.record(9);
        h.record(9);
        reg
    }

    #[test]
    fn prometheus_output_matches_golden() {
        let text = prometheus_text(&sample_registry().snapshot());
        let expected = "\
# HELP pages_total pages served
# TYPE pages_total counter
pages_total{disk=\"0\"} 7
pages_total{disk=\"1\"} 3
# HELP queue_depth tasks waiting
# TYPE queue_depth gauge
queue_depth{disk=\"0\"} 2
# HELP latency_micros modeled latency
# TYPE latency_micros histogram
latency_micros_bucket{le=\"1\"} 1
latency_micros_bucket{le=\"9\"} 3
latency_micros_bucket{le=\"+Inf\"} 3
latency_micros_sum 19
latency_micros_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_output_matches_golden() {
        let json = to_json(&sample_registry().snapshot());
        let expected = "{\"metrics\":[\n  \
{\"name\":\"pages_total\",\"help\":\"pages served\",\"labels\":{\"disk\":\"0\"},\"type\":\"counter\",\"value\":7},\n  \
{\"name\":\"pages_total\",\"help\":\"pages served\",\"labels\":{\"disk\":\"1\"},\"type\":\"counter\",\"value\":3},\n  \
{\"name\":\"queue_depth\",\"help\":\"tasks waiting\",\"labels\":{\"disk\":\"0\"},\"type\":\"gauge\",\"value\":2},\n  \
{\"name\":\"latency_micros\",\"help\":\"modeled latency\",\"labels\":{},\"type\":\"histogram\",\"count\":3,\"sum\":19,\"buckets\":[[1,1,1],[8,9,2]]}\n\
]}\n";
        assert_eq!(json, expected);
    }

    #[test]
    fn equal_snapshots_render_identically() {
        let reg = sample_registry();
        let a = reg.snapshot();
        let b = reg.snapshot();
        assert_eq!(prometheus_text(&a), prometheus_text(&b));
        assert_eq!(to_json(&a), to_json(&b));
        assert_eq!(a.to_prometheus(), prometheus_text(&a));
        assert_eq!(a.to_json(), to_json(&a));
    }

    #[test]
    fn bucket_lines_are_cumulative_and_monotone() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h", "", &[], HistogramConfig::new(2, 8));
        for v in [0u64, 0, 5, 200, 200, 200] {
            h.record(v);
        }
        let text = prometheus_text(&reg.snapshot());
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("h_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative count decreased in {line}");
            last = v;
        }
        assert_eq!(last, 6);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("c", "x", &[("path", "a\"b\\c")]);
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("c{path=\"a\\\"b\\\\c\"} 0"));
        let json = to_json(&reg.snapshot());
        assert!(json.contains("\"path\":\"a\\\"b\\\\c\""));
    }
}
