//! The scalar instruments: counters and gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// All operations are single relaxed atomic instructions: counters are
/// cumulative totals read at quiescent points (snapshots), so no ordering
/// relative to other memory is required.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move in both directions (queue depths,
/// in-flight counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `n` (which may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.add(-5);
        assert_eq!(g.get(), -4);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn counters_survive_concurrent_hammering() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
