//! Naming, grouping, and snapshotting of instruments.
//!
//! A [`MetricsRegistry`] owns the list of registered instruments; the
//! instruments themselves are handed back to callers as `Arc` handles so
//! the hot path records through a plain atomic without ever touching the
//! registry again. The registry's internal mutex is taken only when an
//! instrument is registered or when [`MetricsRegistry::snapshot`] copies
//! everything out.
//!
//! Snapshots preserve **registration order**, which is what makes the
//! exporters deterministic: the same program registering the same
//! instruments and replaying the same seeded workload produces the same
//! byte sequence.

use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, HistogramConfig, HistogramSnapshot};
use crate::instrument::{Counter, Gauge};

/// A label set: `(key, value)` pairs attached to one instrument, e.g.
/// `[("disk", "3")]`.
pub type Labels = Vec<(String, String)>;

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Registered {
    name: String,
    help: String,
    labels: Labels,
    handle: Handle,
}

/// A named collection of instruments that can be snapshotted atomically
/// enough for reporting (each instrument is read once, in registration
/// order).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Vec<Registered>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.inner.lock().map(|v| v.len()).unwrap_or(0);
        write!(f, "MetricsRegistry({n} instruments)")
    }
}

fn label_pairs(labels: &[(&str, &str)]) -> Labels {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers a counter and returns its recording handle.
    ///
    /// Multiple registrations may share a `name` as long as their label
    /// sets differ (e.g. one `pages_served` counter per disk).
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.push(name, help, labels, Handle::Counter(Arc::clone(&c)));
        c
    }

    /// Registers a gauge and returns its recording handle.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.push(name, help, labels, Handle::Gauge(Arc::clone(&g)));
        g
    }

    /// Registers a histogram with the given bucket layout and returns its
    /// recording handle.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        cfg: HistogramConfig,
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new(cfg));
        self.push(name, help, labels, Handle::Histogram(Arc::clone(&h)));
        h
    }

    fn push(&self, name: &str, help: &str, labels: &[(&str, &str)], handle: Handle) {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .push(Registered {
                name: name.to_string(),
                help: help.to_string(),
                labels: label_pairs(labels),
                handle,
            });
    }

    /// Reads every instrument once, in registration order.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        RegistrySnapshot {
            samples: inner
                .iter()
                .map(|r| MetricSample {
                    name: r.name.clone(),
                    help: r.help.clone(),
                    labels: r.labels.clone(),
                    value: match &r.handle {
                        Handle::Counter(c) => MetricValue::Counter(c.get()),
                        Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                        Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

/// The value read from one instrument at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Cumulative total of a [`Counter`].
    Counter(u64),
    /// Instantaneous value of a [`Gauge`].
    Gauge(i64),
    /// Full bucket state of a [`Histogram`].
    Histogram(HistogramSnapshot),
}

/// One instrument's identity and value inside a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name (Prometheus-style `snake_case`).
    pub name: String,
    /// One-line human description.
    pub help: String,
    /// Label set distinguishing this instrument from same-named ones.
    pub labels: Labels,
    /// The value at snapshot time.
    pub value: MetricValue,
}

impl MetricSample {
    /// True when this sample carries exactly the given labels, in order.
    pub fn has_labels(&self, labels: &[(&str, &str)]) -> bool {
        self.labels.len() == labels.len()
            && self
                .labels
                .iter()
                .zip(labels)
                .all(|((k, v), (wk, wv))| k == wk && v == wv)
    }
}

/// A point-in-time copy of every instrument in a [`MetricsRegistry`],
/// in registration order.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrySnapshot {
    /// The samples, one per registered instrument.
    pub samples: Vec<MetricSample>,
}

impl RegistrySnapshot {
    /// Sum of all counters named `name`, across label sets.
    ///
    /// Returns 0 when no such counter exists, so parity checks read
    /// naturally (`snapshot.counter_total("x") == expected`).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match s.value {
                MetricValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// The counter named `name` carrying exactly the given labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.samples
            .iter()
            .filter(|s| s.name == name && s.has_labels(labels))
            .find_map(|s| match s.value {
                MetricValue::Counter(v) => Some(v),
                _ => None,
            })
    }

    /// All gauges named `name` as `(labels, value)` pairs.
    pub fn gauges(&self, name: &str) -> Vec<(&Labels, i64)> {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match s.value {
                MetricValue::Gauge(v) => Some((&s.labels, v)),
                _ => None,
            })
            .collect()
    }

    /// The first histogram named `name` carrying exactly the given labels.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        self.samples
            .iter()
            .filter(|s| s.name == name && s.has_labels(labels))
            .find_map(|s| match &s.value {
                MetricValue::Histogram(h) => Some(h),
                _ => None,
            })
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Deterministic: same snapshot, same bytes.
    pub fn to_prometheus(&self) -> String {
        crate::export::prometheus_text(self)
    }

    /// Renders the snapshot as a JSON document. Deterministic: same
    /// snapshot, same bytes.
    pub fn to_json(&self) -> String {
        crate::export::to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_preserves_registration_order_and_values() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("alpha_total", "first", &[]);
        let g = reg.gauge("queue_depth", "second", &[("disk", "0")]);
        let h = reg.histogram("lat", "third", &[], HistogramConfig::new(2, 8));
        a.add(5);
        g.set(-2);
        h.record(3);

        let snap = reg.snapshot();
        assert_eq!(snap.samples.len(), 3);
        assert_eq!(snap.samples[0].name, "alpha_total");
        assert_eq!(snap.samples[0].value, MetricValue::Counter(5));
        assert_eq!(snap.samples[1].value, MetricValue::Gauge(-2));
        assert!(matches!(
            &snap.samples[2].value,
            MetricValue::Histogram(hs) if hs.count == 1 && hs.sum == 3
        ));
    }

    #[test]
    fn counter_total_sums_across_label_sets() {
        let reg = MetricsRegistry::new();
        let d0 = reg.counter("pages_total", "pages", &[("disk", "0")]);
        let d1 = reg.counter("pages_total", "pages", &[("disk", "1")]);
        d0.add(10);
        d1.add(32);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_total("pages_total"), 42);
        assert_eq!(snap.counter_with("pages_total", &[("disk", "1")]), Some(32));
        assert_eq!(snap.counter_with("pages_total", &[("disk", "9")]), None);
        assert_eq!(snap.counter_total("missing"), 0);
    }

    #[test]
    fn handles_keep_recording_after_snapshot() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x_total", "", &[]);
        c.inc();
        let first = reg.snapshot();
        c.inc();
        let second = reg.snapshot();
        assert_eq!(first.counter_total("x_total"), 1);
        assert_eq!(second.counter_total("x_total"), 2);
    }
}
