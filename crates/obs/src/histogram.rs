//! A lock-free log-linear histogram of `u64` samples.
//!
//! The layout is the classic HdrHistogram-style compromise between a
//! linear histogram (constant absolute resolution, unbounded bucket
//! count) and a logarithmic one (bounded buckets, terrible resolution at
//! the top): every power-of-two magnitude `[2^m, 2^{m+1})` is split into
//! `2^sub_bits` equal **linear** sub-buckets, so the relative error of a
//! recorded sample is bounded by `2^-sub_bits` across the whole range.
//! Values at or above `2^limit_bits` clamp into the last bucket.
//!
//! [`Histogram::record`] is two relaxed atomic adds plus one to a bucket
//! — no locks, no allocation — so it is safe to leave on the query path.
//! [`Histogram::snapshot`] copies the buckets out into a plain
//! [`HistogramSnapshot`], and snapshots [`HistogramSnapshot::merge`]
//! elementwise, which makes merging **associative and commutative** and
//! lets per-shard or per-engine histograms aggregate without coordination.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket layout of a [`Histogram`]: `2^sub_bits` linear sub-buckets per
/// power-of-two magnitude, clamping at `2^limit_bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramConfig {
    /// log2 of the sub-buckets per power-of-two magnitude.
    pub sub_bits: u32,
    /// Values `>= 2^limit_bits` clamp into the last bucket.
    pub limit_bits: u32,
}

impl HistogramConfig {
    /// A layout with `2^sub_bits` sub-buckets per magnitude covering
    /// values below `2^limit_bits`.
    ///
    /// # Panics
    ///
    /// Panics unless `sub_bits < limit_bits <= 63` and `sub_bits <= 8`.
    pub fn new(sub_bits: u32, limit_bits: u32) -> Self {
        assert!(sub_bits <= 8, "sub_bits {sub_bits} too large");
        assert!(
            sub_bits < limit_bits && limit_bits <= 63,
            "limit_bits {limit_bits} must be in ({sub_bits}, 63]"
        );
        HistogramConfig {
            sub_bits,
            limit_bits,
        }
    }

    /// Layout for latencies in microseconds: 25 % relative resolution up
    /// to ~71 minutes (`2^32` µs).
    pub fn latency_micros() -> Self {
        HistogramConfig::new(2, 32)
    }

    /// Layout for sizes in pages (or any small count): 25 % relative
    /// resolution up to ~16 M pages (`2^24`).
    pub fn pages() -> Self {
        HistogramConfig::new(2, 24)
    }

    /// Number of buckets this layout produces.
    pub fn bucket_count(&self) -> usize {
        (((self.limit_bits - self.sub_bits + 1) as u64) << self.sub_bits) as usize
    }

    /// The bucket a value lands in.
    pub fn index(&self, v: u64) -> usize {
        let subs = 1u64 << self.sub_bits;
        if v < subs {
            return v as usize;
        }
        let top = 63 - v.leading_zeros(); // floor(log2 v), >= sub_bits
        if top >= self.limit_bits {
            return self.bucket_count() - 1;
        }
        let exp = top - self.sub_bits;
        (((exp as u64 + 1) << self.sub_bits) + ((v >> exp) - subs)) as usize
    }

    /// The largest value that lands in bucket `i` (the Prometheus `le`
    /// bound). The last bucket additionally absorbs every clamped value,
    /// so exporters render its bound as `+Inf`.
    pub fn upper_bound(&self, i: usize) -> u64 {
        let subs = 1u64 << self.sub_bits;
        if (i as u64) < subs {
            return i as u64;
        }
        let e = (i as u64 / subs) - 1;
        let r = i as u64 % subs;
        ((subs + r + 1) << e) - 1
    }
}

/// A fixed-layout concurrent histogram (see the module docs).
#[derive(Debug)]
pub struct Histogram {
    cfg: HistogramConfig,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram with the given layout.
    pub fn new(cfg: HistogramConfig) -> Self {
        Histogram {
            cfg,
            buckets: (0..cfg.bucket_count()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket layout.
    pub fn config(&self) -> HistogramConfig {
        self.cfg
    }

    /// Records one sample: two relaxed atomic adds plus one bucket add.
    pub fn record(&self, v: u64) {
        self.buckets[self.cfg.index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records `n` occurrences of the same sample.
    pub fn record_n(&self, v: u64, n: u64) {
        self.buckets[self.cfg.index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Copies the current state out into a plain snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            cfg: self.cfg,
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// Adds another histogram's current contents into this one. Both must
    /// share the same layout.
    ///
    /// # Panics
    ///
    /// Panics if the layouts differ.
    pub fn merge_from(&self, other: &Histogram) {
        assert_eq!(self.cfg, other.cfg, "histogram layouts must match");
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// The bucket layout the counts were recorded under.
    pub cfg: HistogramConfig,
    /// Per-bucket sample counts (length [`HistogramConfig::bucket_count`]).
    pub buckets: Vec<u64>,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot with the given layout.
    pub fn empty(cfg: HistogramConfig) -> Self {
        HistogramSnapshot {
            cfg,
            buckets: vec![0; cfg.bucket_count()],
            count: 0,
            sum: 0,
        }
    }

    /// Elementwise sum of two snapshots — associative and commutative.
    ///
    /// # Panics
    ///
    /// Panics if the layouts differ.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        assert_eq!(self.cfg, other.cfg, "histogram layouts must match");
        HistogramSnapshot {
            cfg: self.cfg,
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
            count: self.count + other.count,
            sum: self.sum + other.sum,
        }
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile of the recorded samples by nearest rank: the
    /// upper bound of the first bucket whose cumulative count reaches
    /// `ceil(q × count)`. `q` is clamped to `[0, 1]`; 0 when empty. The
    /// answer carries the layout's relative error (`2^-sub_bits`), like
    /// any bucketed quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return self.cfg.upper_bound(i);
            }
        }
        self.cfg.upper_bound(self.buckets.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        let cfg = HistogramConfig::new(2, 8);
        for v in 0..4u64 {
            assert_eq!(cfg.index(v), v as usize);
            assert_eq!(cfg.upper_bound(v as usize), v);
        }
    }

    #[test]
    fn log_region_splits_each_magnitude() {
        let cfg = HistogramConfig::new(2, 8);
        // [8, 16) has 4 sub-buckets of width 2.
        assert_eq!(cfg.index(8), 8);
        assert_eq!(cfg.index(9), 8);
        assert_eq!(cfg.index(10), 9);
        assert_eq!(cfg.index(15), 11);
        assert_eq!(cfg.upper_bound(8), 9);
        assert_eq!(cfg.upper_bound(11), 15);
    }

    #[test]
    fn index_is_monotone_and_bounds_are_consistent() {
        let cfg = HistogramConfig::new(3, 16);
        let mut prev = 0usize;
        for v in 0..100_000u64 {
            let i = cfg.index(v);
            assert!(i >= prev, "index not monotone at {v}");
            assert!(v <= cfg.upper_bound(i) || i == cfg.bucket_count() - 1);
            if i > 0 {
                assert!(v > cfg.upper_bound(i - 1), "value {v} below bucket {i}");
            }
            prev = i;
        }
    }

    #[test]
    fn overflow_clamps_into_the_last_bucket() {
        let cfg = HistogramConfig::new(2, 8);
        assert_eq!(cfg.index(255), cfg.bucket_count() - 1);
        assert_eq!(cfg.index(256), cfg.bucket_count() - 1);
        assert_eq!(cfg.index(u64::MAX), cfg.bucket_count() - 1);
        let h = Histogram::new(cfg);
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn record_preserves_count_and_sum() {
        let h = Histogram::new(HistogramConfig::latency_micros());
        for v in [0u64, 1, 7, 130, 999_999] {
            h.record(v);
        }
        h.record_n(50, 3);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1 + 7 + 130 + 999_999 + 150);
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.buckets.iter().sum::<u64>(), 8);
    }

    #[test]
    fn merge_from_accumulates() {
        let cfg = HistogramConfig::pages();
        let (a, b) = (Histogram::new(cfg), Histogram::new(cfg));
        a.record(10);
        b.record(20);
        b.record(30);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 60);
        assert_eq!(
            a.snapshot(),
            a.snapshot().merge(&HistogramSnapshot::empty(cfg))
        );
    }

    #[test]
    fn quantiles_by_nearest_rank() {
        let cfg = HistogramConfig::new(2, 16);
        let h = Histogram::new(cfg);
        assert_eq!(h.snapshot().quantile(0.5), 0);
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Exact in the linear region, bounded relative error above it.
        assert_eq!(s.quantile(0.0), cfg.upper_bound(cfg.index(1)));
        let p50 = s.quantile(0.5);
        assert!((48..=63).contains(&p50), "p50 {p50}");
        let p99 = s.quantile(0.99);
        assert!((96..=127).contains(&p99), "p99 {p99}");
        assert_eq!(s.quantile(1.0), s.quantile(0.999));
        // Quantiles are monotone in q.
        let qs: Vec<u64> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| s.quantile(q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }

    #[test]
    #[should_panic(expected = "layouts must match")]
    fn mismatched_layouts_refuse_to_merge() {
        let a = Histogram::new(HistogramConfig::new(2, 8));
        let b = Histogram::new(HistogramConfig::new(2, 9));
        a.merge_from(&b);
    }
}
