//! Engine-wide observability primitives for the parallel search system.
//!
//! The per-query `QueryTrace` of the parallel engine answers "what did
//! *this* query cost?" and dies with the query. This crate answers the
//! steady-state question — what has the engine done since it started? —
//! with cumulative metrics cheap enough to leave on in production:
//!
//! * [`Counter`] — a monotonically increasing `AtomicU64`.
//! * [`Gauge`] — an `AtomicI64` that can go up and down (queue depths).
//! * [`Histogram`] — a fixed-size **log-linear** histogram of `u64`
//!   samples (latencies in microseconds, sizes in pages): every
//!   power-of-two magnitude is split into a fixed number of linear
//!   sub-buckets, so relative resolution is constant across nine orders
//!   of magnitude while `record` stays two atomic adds with no locks.
//! * [`MetricsRegistry`] — names the instruments and snapshots them all
//!   at once into a [`RegistrySnapshot`] with deterministic
//!   Prometheus-text and JSON exporters.
//!
//! **Hot-path discipline.** Recording never takes a lock and never
//! allocates: handles are `Arc`s handed out at registration time, and the
//! registry's own mutex is touched only when registering instruments or
//! taking a snapshot. Everything recorded here is *deterministic* for a
//! seeded workload (counts and modeled durations, never wall-clock), so
//! two runs of the same workload export byte-identical snapshots — which
//! is what makes the conformance suites able to golden-file them.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
pub mod histogram;
pub mod instrument;
pub mod registry;

pub use export::{prometheus_text, to_json};
pub use histogram::{Histogram, HistogramConfig, HistogramSnapshot};
pub use instrument::{Counter, Gauge};
pub use registry::{MetricValue, MetricsRegistry, RegistrySnapshot};
