//! Concurrency stress: many threads hammering one registry's instruments
//! must lose no update — the final totals equal the sums of what each
//! thread privately tallied. This is the whole point of the relaxed
//! atomic instruments: unsynchronized recording with exact totals.

use std::sync::Arc;

use parsim_obs::{HistogramConfig, MetricsRegistry};

const THREADS: usize = 8;
const OPS: u64 = 20_000;

#[test]
fn hammered_instruments_lose_no_update() {
    let reg = Arc::new(MetricsRegistry::new());
    let counter = reg.counter("ops_total", "operations", &[]);
    let gauge = reg.gauge("level", "net level", &[]);
    let histogram = reg.histogram("size", "sizes", &[], HistogramConfig::new(2, 16));

    // Each thread records a deterministic per-thread stream and returns
    // its private tally of (counter adds, gauge delta, samples, sum).
    let tallies: Vec<(u64, i64, u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let counter = Arc::clone(&counter);
                let gauge = Arc::clone(&gauge);
                let histogram = Arc::clone(&histogram);
                s.spawn(move || {
                    let (mut adds, mut delta, mut samples, mut sum) = (0u64, 0i64, 0u64, 0u64);
                    for i in 0..OPS {
                        let v = (t as u64).wrapping_mul(31).wrapping_add(i) % 1009;
                        counter.add(v);
                        adds += v;
                        if v % 2 == 0 {
                            gauge.inc();
                            delta += 1;
                        } else {
                            gauge.dec();
                            delta -= 1;
                        }
                        histogram.record(v);
                        samples += 1;
                        sum += v;
                    }
                    (adds, delta, samples, sum)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stress thread does not panic"))
            .collect()
    });

    let want_adds: u64 = tallies.iter().map(|t| t.0).sum();
    let want_delta: i64 = tallies.iter().map(|t| t.1).sum();
    let want_samples: u64 = tallies.iter().map(|t| t.2).sum();
    let want_sum: u64 = tallies.iter().map(|t| t.3).sum();

    let snap = reg.snapshot();
    assert_eq!(snap.counter_total("ops_total"), want_adds);
    let gauges = snap.gauges("level");
    assert_eq!(gauges.len(), 1);
    assert_eq!(gauges[0].1, want_delta);
    let h = snap.histogram_with("size", &[]).unwrap();
    assert_eq!(h.count, want_samples);
    assert_eq!(h.sum, want_sum);
    assert_eq!(h.buckets.iter().sum::<u64>(), want_samples);
}

/// Snapshots taken while writers are mid-flight stay internally sane
/// (bucket sums never exceed the final count) and the registry still
/// converges to the exact totals afterwards.
#[test]
fn snapshots_during_writes_are_sane() {
    let reg = Arc::new(MetricsRegistry::new());
    let counter = reg.counter("ticks_total", "ticks", &[]);
    let histogram = reg.histogram("v", "values", &[], HistogramConfig::new(2, 12));

    std::thread::scope(|s| {
        for _ in 0..4 {
            let counter = Arc::clone(&counter);
            let histogram = Arc::clone(&histogram);
            s.spawn(move || {
                for i in 0..OPS {
                    counter.inc();
                    histogram.record(i % 257);
                }
            });
        }
        for _ in 0..50 {
            let snap = reg.snapshot();
            let h = snap.histogram_with("v", &[]).unwrap();
            assert!(h.count <= 4 * OPS);
            assert!(snap.counter_total("ticks_total") <= 4 * OPS);
            assert!(h.buckets.iter().sum::<u64>() <= 4 * OPS);
        }
    });

    let snap = reg.snapshot();
    assert_eq!(snap.counter_total("ticks_total"), 4 * OPS);
    let h = snap.histogram_with("v", &[]).unwrap();
    assert_eq!(h.count, 4 * OPS);
    assert_eq!(h.buckets.iter().sum::<u64>(), 4 * OPS);
}
