//! Property tests of the log-linear [`Histogram`]: conservation (count
//! and sum survive recording and snapshotting), monotonicity of merge,
//! and the algebra that makes shard aggregation safe — merge is
//! associative, commutative, and commutes with snapshotting.

use parsim_obs::{Histogram, HistogramConfig, HistogramSnapshot};
use proptest::prelude::*;

/// A random but valid bucket layout: `sub_bits < limit_bits`, small
/// enough to allocate freely.
fn config() -> impl Strategy<Value = HistogramConfig> {
    (0u32..=4).prop_flat_map(|sub| {
        ((sub + 1)..=24).prop_map(move |limit| HistogramConfig::new(sub, limit))
    })
}

fn fill(cfg: HistogramConfig, samples: &[u64]) -> Histogram {
    let h = Histogram::new(cfg);
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every recorded sample lands in exactly one bucket, and count/sum
    /// are conserved through recording and snapshotting.
    #[test]
    fn count_and_sum_are_preserved(
        cfg in config(),
        samples in prop::collection::vec(0u64..1_000_000, 0..64),
    ) {
        let h = fill(cfg, &samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        let s = h.snapshot();
        prop_assert_eq!(s.count, h.count());
        prop_assert_eq!(s.sum, h.sum());
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    /// Arbitrary u64s (including clamped outliers) still conserve count,
    /// and every index stays in range.
    #[test]
    fn extreme_values_clamp_without_losing_samples(
        cfg in config(),
        samples in prop::collection::vec(any::<u64>(), 1..32),
    ) {
        let h = fill(cfg, &samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        for &v in &samples {
            prop_assert!(cfg.index(v) < cfg.bucket_count());
        }
        prop_assert_eq!(
            h.snapshot().buckets.iter().sum::<u64>(),
            samples.len() as u64
        );
    }

    /// The bucket index is monotone in the value, and each value lies
    /// within its bucket's bounds (except in the clamping last bucket).
    #[test]
    fn index_is_monotone_and_bounded(
        cfg in config(),
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(cfg.index(lo) <= cfg.index(hi));
        let i = cfg.index(lo);
        if i < cfg.bucket_count() - 1 {
            prop_assert!(lo <= cfg.upper_bound(i));
        }
        if i > 0 {
            prop_assert!(lo > cfg.upper_bound(i - 1));
        }
    }

    /// Merging never decreases any bucket: the merge of two snapshots
    /// dominates both inputs elementwise.
    #[test]
    fn merge_is_elementwise_monotone(
        cfg in config(),
        xs in prop::collection::vec(0u64..100_000, 0..48),
        ys in prop::collection::vec(0u64..100_000, 0..48),
    ) {
        let (a, b) = (fill(cfg, &xs).snapshot(), fill(cfg, &ys).snapshot());
        let m = a.merge(&b);
        for i in 0..cfg.bucket_count() {
            prop_assert!(m.buckets[i] >= a.buckets[i]);
            prop_assert!(m.buckets[i] >= b.buckets[i]);
            prop_assert_eq!(m.buckets[i], a.buckets[i] + b.buckets[i]);
        }
        prop_assert_eq!(m.count, a.count + b.count);
        prop_assert_eq!(m.sum, a.sum + b.sum);
    }

    /// Merge is commutative and associative, with the empty snapshot as
    /// identity — per-shard histograms can aggregate in any order.
    #[test]
    fn merge_is_commutative_associative_with_identity(
        cfg in config(),
        xs in prop::collection::vec(0u64..100_000, 0..32),
        ys in prop::collection::vec(0u64..100_000, 0..32),
        zs in prop::collection::vec(0u64..100_000, 0..32),
    ) {
        let a = fill(cfg, &xs).snapshot();
        let b = fill(cfg, &ys).snapshot();
        let c = fill(cfg, &zs).snapshot();
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        prop_assert_eq!(a.merge(&HistogramSnapshot::empty(cfg)), a);
    }

    /// Snapshot commutes with merge: merging live histograms and then
    /// snapshotting equals snapshotting first and merging the snapshots.
    #[test]
    fn snapshot_of_merge_equals_merge_of_snapshots(
        cfg in config(),
        xs in prop::collection::vec(0u64..100_000, 0..48),
        ys in prop::collection::vec(0u64..100_000, 0..48),
    ) {
        let (ha, hb) = (fill(cfg, &xs), fill(cfg, &ys));
        let merged_snapshots = ha.snapshot().merge(&hb.snapshot());
        ha.merge_from(&hb);
        prop_assert_eq!(ha.snapshot(), merged_snapshots);
    }

    /// record_n(v, n) is indistinguishable from n calls to record(v).
    #[test]
    fn record_n_equals_repeated_record(
        cfg in config(),
        v in 0u64..1_000_000,
        n in 1u64..50,
    ) {
        let bulk = Histogram::new(cfg);
        bulk.record_n(v, n);
        let loop_h = Histogram::new(cfg);
        for _ in 0..n {
            loop_h.record(v);
        }
        prop_assert_eq!(bulk.snapshot(), loop_h.snapshot());
    }
}
