//! Random-number helpers shared by the generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the deterministic RNG used by all generators.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws a standard normal variate via the Box–Muller transform.
///
/// Implemented locally so the workspace needs no distribution crate beyond
/// `rand` itself.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue; // avoid ln(0)
        }
        let u2: f64 = rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        return r * theta.cos();
    }
}

/// Draws a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = seeded(1);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.01, "mean = {mean}");
    }
}
