//! Text descriptors of substrings of a synthetic corpus.
//!
//! The paper's third workload is "text data corresponding to substrings of
//! a large set of texts" (d = 15) — feature vectors characterizing
//! substrings of ASCII documents, in the spirit of the automatic-correction
//! features surveyed by Kukich \[Kuk 92\]. We rebuild the pipeline:
//!
//! 1. A synthetic corpus is produced by a first-order Markov chain over an
//!    embedded vocabulary of common English words (Zipf-weighted start
//!    distribution, bigram transitions keyed on the last letter).
//! 2. Sliding-window substrings are extracted from the corpus.
//! 3. Each substring is mapped to a d-dimensional descriptor: a histogram
//!    of its letter bigrams folded into `d` buckets, normalized by window
//!    length.
//!
//! The resulting vectors are sparse, skewed by English letter statistics,
//! and clustered — the same character as the paper's text descriptors.

use rand::Rng;

use parsim_geometry::Point;

use crate::rng::seeded;
use crate::DataGenerator;

/// Embedded vocabulary: 128 common English words.
const VOCABULARY: [&str; 128] = [
    "where", "the", "of", "and", "a", "to", "in", "is", "you", "that", "it", "he", "was", "for",
    "on", "are", "as", "with", "his", "they", "i", "at", "be", "this", "have", "from", "or", "one",
    "had", "by", "word", "but", "not", "what", "all", "were", "we", "when", "your", "can", "said",
    "there", "use", "an", "each", "which", "she", "do", "how", "their", "if", "will", "up",
    "other", "about", "out", "many", "then", "them", "these", "so", "some", "her", "would", "make",
    "like", "him", "into", "time", "has", "look", "two", "more", "write", "go", "see", "number",
    "no", "way", "could", "people", "my", "than", "first", "water", "been", "call", "who", "oil",
    "its", "now", "find", "long", "down", "day", "did", "get", "come", "made", "may", "part",
    "over", "new", "sound", "take", "only", "little", "work", "know", "place", "year", "live",
    "me", "back", "give", "most", "very", "after", "thing", "our", "just", "name", "good",
    "sentence", "man", "think", "say", "great",
];

/// Length of the sliding substring window in characters.
const WINDOW: usize = 32;

/// Generates text-descriptor feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextDescriptorGenerator {
    dim: usize,
}

impl TextDescriptorGenerator {
    /// Creates a generator of d-dimensional text descriptors. The paper
    /// uses `d = 15`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        TextDescriptorGenerator { dim }
    }

    /// Synthesizes a corpus of roughly `chars` characters.
    fn synthesize_corpus<R: Rng>(&self, rng: &mut R, chars: usize) -> String {
        let mut corpus = String::with_capacity(chars + 16);
        // Zipf-weighted word choice: rank r has weight 1/(r+1).
        let weights: Vec<f64> = (0..VOCABULARY.len())
            .map(|r| 1.0 / (r + 1) as f64)
            .collect();
        let total: f64 = weights.iter().sum();
        let mut last_letter: Option<u8> = None;
        while corpus.len() < chars {
            // Markov flavor: with probability 1/2 prefer a word starting
            // with a letter "adjacent" to the last letter of the previous
            // word, otherwise draw Zipf.
            let word = if let (Some(l), true) = (last_letter, rng.random::<bool>()) {
                let candidates: Vec<&&str> = VOCABULARY
                    .iter()
                    .filter(|w| {
                        let f = w.as_bytes()[0];
                        f == l || f == l.wrapping_add(1)
                    })
                    .collect();
                if candidates.is_empty() {
                    self.zipf_word(rng, &weights, total)
                } else {
                    candidates[rng.random_range(0..candidates.len())]
                }
            } else {
                self.zipf_word(rng, &weights, total)
            };
            corpus.push_str(word);
            corpus.push(' ');
            last_letter = word.as_bytes().last().copied();
        }
        corpus
    }

    fn zipf_word<'a, R: Rng>(&self, rng: &mut R, weights: &[f64], total: f64) -> &'a &'static str {
        let mut x = rng.random::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return &VOCABULARY[i];
            }
        }
        &VOCABULARY[0]
    }

    /// Maps one substring window to its descriptor: letter-bigram counts
    /// folded into `dim` buckets, normalized by window length.
    fn descriptor(&self, window: &[u8]) -> Point {
        let mut hist = vec![0u32; self.dim];
        for pair in window.windows(2) {
            let a = pair[0] as usize;
            let b = pair[1] as usize;
            // A small multiplicative hash folds the 2-byte bigram into a
            // descriptor bucket.
            let bucket = (a.wrapping_mul(31).wrapping_add(b)).wrapping_mul(0x9E37_79B1) >> 16;
            hist[bucket % self.dim] += 1;
        }
        let scale = 4.0 / WINDOW as f64; // typical count per bucket ≈ WINDOW/dim
        Point::from_vec(
            hist.into_iter()
                .map(|c| (c as f64 * scale).min(1.0))
                .collect(),
        )
    }
}

impl DataGenerator for TextDescriptorGenerator {
    fn dim(&self) -> usize {
        self.dim
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = seeded(seed);
        // Enough corpus for n windows with stride 8.
        let stride = 8;
        let corpus = self.synthesize_corpus(&mut rng, n * stride + WINDOW + 1);
        let bytes = corpus.as_bytes();
        (0..n)
            .map(|i| self.descriptor(&bytes[i * stride..i * stride + WINDOW]))
            .collect()
    }

    fn name(&self) -> &'static str {
        "text"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_unit_cube_points() {
        let g = TextDescriptorGenerator::new(15);
        let pts = g.generate(300, 17);
        assert_eq!(pts.len(), 300);
        assert!(pts.iter().all(|p| p.dim() == 15 && p.in_unit_cube()));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = TextDescriptorGenerator::new(15);
        assert_eq!(g.generate(64, 3), g.generate(64, 3));
    }

    #[test]
    fn descriptors_are_not_all_identical() {
        let g = TextDescriptorGenerator::new(15);
        let pts = g.generate(100, 5);
        let first = &pts[0];
        assert!(pts.iter().any(|p| p != first));
    }

    #[test]
    fn overlapping_windows_are_similar() {
        // Consecutive sliding windows share most of their bigrams, so their
        // descriptors must be closer than two random windows on average.
        let g = TextDescriptorGenerator::new(15);
        let pts = g.generate(1000, 8);
        let adjacent: f64 = pts.windows(2).map(|w| w[0].dist(&w[1])).sum::<f64>() / 999.0;
        let distant: f64 = pts
            .iter()
            .zip(pts.iter().skip(500))
            .map(|(a, b)| a.dist(b))
            .sum::<f64>()
            / 500.0;
        assert!(
            adjacent < distant,
            "adjacent {adjacent} vs distant {distant}"
        );
    }

    #[test]
    fn corpus_is_ascii_words() {
        let g = TextDescriptorGenerator::new(8);
        let mut rng = seeded(1);
        let corpus = g.synthesize_corpus(&mut rng, 500);
        assert!(corpus.is_ascii());
        assert!(corpus.split_whitespace().all(|w| VOCABULARY.contains(&w)));
    }
}
