//! Query-point workloads.
//!
//! The paper's experiments use "uniformly distributed query points" for the
//! uniform data sets and data-distributed queries for the real ones (a
//! similarity query is usually issued for an object like the stored ones).

use parsim_geometry::Point;

use crate::uniform::UniformGenerator;
use crate::DataGenerator;

/// A workload of query points.
#[derive(Debug, Clone)]
pub enum QueryWorkload {
    /// Query points drawn uniformly from the data space.
    Uniform {
        /// Dimensionality of the queries.
        dim: usize,
    },
    /// Query points drawn from the same distribution as the stored data:
    /// the data generator's stream is extended past the stored prefix, so
    /// queries share the data's structure (e.g. the same cluster centers)
    /// without coinciding with any stored point.
    DataLike {
        /// Number of points the database stores — the length of the stream
        /// prefix the queries must skip.
        data_count: usize,
    },
}

impl QueryWorkload {
    /// Generates `n` query points.
    ///
    /// For [`QueryWorkload::DataLike`] the `source` generator is run with
    /// the *same* seed for `data_count + n` points and the last `n` are
    /// returned, so queries follow exactly the data distribution.
    pub fn generate(&self, source: &dyn DataGenerator, n: usize, seed: u64) -> Vec<Point> {
        match self {
            QueryWorkload::Uniform { dim } => UniformGenerator::new(*dim).generate(n, seed),
            QueryWorkload::DataLike { data_count } => {
                let mut stream = source.generate(data_count + n, seed);
                stream.split_off(*data_count)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustered::ClusteredGenerator;

    #[test]
    fn uniform_queries_ignore_source() {
        let src = ClusteredGenerator::new(4, 2, 0.01);
        let q = QueryWorkload::Uniform { dim: 4 };
        let pts = q.generate(&src, 100, 1);
        assert_eq!(pts.len(), 100);
        assert!(pts.iter().all(|p| p.dim() == 4));
        // Uniform queries should spread over many quadrants even though the
        // source is clustered.
        use parsim_geometry::QuadrantSplitter;
        let qs = QuadrantSplitter::midpoint(4).unwrap();
        let quadrants: std::collections::HashSet<_> = pts.iter().map(|p| qs.bucket_of(p)).collect();
        assert!(quadrants.len() > 8);
    }

    #[test]
    fn datalike_queries_follow_source_distribution() {
        let src = ClusteredGenerator::new(4, 1, 0.005);
        let data = src.generate(200, 7);
        let q = QueryWorkload::DataLike { data_count: 200 };
        let queries = q.generate(&src, 50, 7);
        // Every data-like query must be near the single tight cluster.
        let centroid = {
            let mut c = vec![0.0; 4];
            for p in &data {
                for (ci, pi) in c.iter_mut().zip(p.iter()) {
                    *ci += pi;
                }
            }
            Point::from_vec(c.into_iter().map(|x| x / data.len() as f64).collect())
        };
        assert!(queries.iter().all(|p| p.dist(&centroid) < 0.2));
        // And queries differ from the stored points (distinct seed).
        assert!(queries.iter().all(|q| !data.contains(q)));
    }
}
