//! Fourier descriptors of synthetic CAD part contours.
//!
//! The paper's real workload is "Fourier points corresponding to contours
//! of industrial parts" — a database of CAD part *variants*, hence highly
//! clustered. We reproduce the construction end-to-end instead of merely
//! sampling a distribution:
//!
//! 1. A part is a closed contour given by a radius function
//!    `r(θ) = 1 + Σ harmonics` drawn from one of several parameterized
//!    **part families** (gears, cams, elliptic plates, brackets). Variants
//!    of a family perturb the family's harmonic amplitudes slightly.
//! 2. The contour is sampled at `M` angles and its discrete Fourier
//!    coefficients are computed.
//! 3. The feature vector is the sequence of low-order coefficients
//!    `(a_1, b_1, a_2, b_2, …)`, normalized by the fundamental magnitude
//!    (the classic scale-invariant Fourier descriptor \[WW 80\]) and mapped
//!    affinely into the unit data space.
//!
//! The result has the statistical character the paper relies on: strongly
//! clustered (one cluster per part family), correlated coordinates, and
//! energy concentrated in the low harmonics.

use rand::Rng;

use parsim_geometry::Point;

use crate::rng::{normal, seeded};
use crate::DataGenerator;

/// Number of contour samples used for the DFT.
const CONTOUR_SAMPLES: usize = 128;

/// A family of industrial parts, described by its characteristic harmonics.
#[derive(Debug, Clone, PartialEq)]
struct PartFamily {
    /// Human-readable family name (for debugging / docs).
    name: &'static str,
    /// `(harmonic index, amplitude, phase)` triples of the base shape.
    harmonics: Vec<(usize, f64, f64)>,
    /// Relative amplitude jitter between variants of the family.
    variance: f64,
}

fn part_families() -> Vec<PartFamily> {
    vec![
        PartFamily {
            // A gear: strong high-frequency teeth on a round blank.
            name: "gear",
            harmonics: vec![(12, 0.18, 0.0), (24, 0.05, 0.7), (2, 0.03, 0.2)],
            variance: 0.08,
        },
        PartFamily {
            // An elliptic plate: dominated by the 2nd harmonic.
            name: "plate",
            harmonics: vec![(2, 0.30, 0.4), (4, 0.06, 1.1)],
            variance: 0.10,
        },
        PartFamily {
            // A three-lobed cam.
            name: "cam",
            harmonics: vec![(3, 0.25, 0.9), (6, 0.08, 0.3), (1, 0.05, 2.0)],
            variance: 0.12,
        },
        PartFamily {
            // A rectangular bracket: 4th harmonic with square-ish overtones.
            name: "bracket",
            harmonics: vec![(4, 0.22, 0.0), (8, 0.07, 0.5), (12, 0.03, 1.4)],
            variance: 0.09,
        },
        PartFamily {
            // A five-hole flange.
            name: "flange",
            harmonics: vec![(5, 0.20, 1.2), (10, 0.06, 0.1)],
            variance: 0.11,
        },
    ]
}

/// Generates Fourier-descriptor feature vectors of synthetic CAD parts.
#[derive(Debug, Clone)]
pub struct FourierGenerator {
    dim: usize,
    families: Vec<PartFamily>,
}

impl FourierGenerator {
    /// Creates a generator of d-dimensional Fourier descriptors.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `dim` exceeds the number of usable DFT
    /// coefficients (`CONTOUR_SAMPLES − 2`).
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            dim <= CONTOUR_SAMPLES - 2,
            "dimension exceeds available Fourier coefficients"
        );
        FourierGenerator {
            dim,
            families: part_families(),
        }
    }

    /// Samples one part contour: the radius at `CONTOUR_SAMPLES` angles.
    fn sample_contour<R: Rng>(&self, rng: &mut R) -> Vec<f64> {
        let family = &self.families[rng.random_range(0..self.families.len())];
        // A variant perturbs each amplitude and phase slightly.
        let harmonics: Vec<(usize, f64, f64)> = family
            .harmonics
            .iter()
            .map(|&(k, amp, phase)| {
                (
                    k,
                    (amp * (1.0 + normal(rng, 0.0, family.variance))).max(0.0),
                    phase + normal(rng, 0.0, 0.05),
                )
            })
            .collect();
        let scale = rng.random_range(0.5..2.0); // manufacturing size
        (0..CONTOUR_SAMPLES)
            .map(|m| {
                let theta = 2.0 * std::f64::consts::PI * m as f64 / CONTOUR_SAMPLES as f64;
                let mut r = 1.0;
                for &(k, amp, phase) in &harmonics {
                    r += amp * (k as f64 * theta + phase).cos();
                }
                scale * r.max(0.05)
            })
            .collect()
    }

    /// Computes the normalized Fourier descriptor of a contour.
    fn descriptor(&self, contour: &[f64]) -> Point {
        let m = contour.len() as f64;
        // Real DFT coefficients a_k (cos) and b_k (sin) for k = 1 ..
        let needed = self.dim.div_ceil(2);
        let mut coeffs = Vec::with_capacity(needed * 2);
        for k in 1..=needed {
            let mut a = 0.0;
            let mut b = 0.0;
            for (i, &r) in contour.iter().enumerate() {
                let ang = 2.0 * std::f64::consts::PI * k as f64 * i as f64 / m;
                a += r * ang.cos();
                b += r * ang.sin();
            }
            coeffs.push(2.0 * a / m);
            coeffs.push(2.0 * b / m);
        }
        // Scale-invariant normalization by the total harmonic energy.
        let energy: f64 = coeffs.iter().map(|c| c * c).sum::<f64>().sqrt();
        let norm = if energy > 1e-12 { energy } else { 1.0 };
        // Affine map of the signed, normalized coefficient into [0,1].
        let features: Vec<f64> = coeffs
            .iter()
            .take(self.dim)
            .map(|c| (0.5 + 0.5 * (c / norm)).clamp(0.0, 1.0))
            .collect();
        Point::from_vec(features)
    }
}

impl DataGenerator for FourierGenerator {
    fn dim(&self) -> usize {
        self.dim
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| {
                let contour = self.sample_contour(&mut rng);
                self.descriptor(&contour)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "fourier"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_unit_cube_points() {
        let g = FourierGenerator::new(16);
        let pts = g.generate(200, 21);
        assert_eq!(pts.len(), 200);
        assert!(pts.iter().all(|p| p.dim() == 16 && p.in_unit_cube()));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = FourierGenerator::new(8);
        assert_eq!(g.generate(32, 4), g.generate(32, 4));
    }

    #[test]
    fn descriptors_are_scale_invariant() {
        let g = FourierGenerator::new(8);
        let contour: Vec<f64> = (0..CONTOUR_SAMPLES)
            .map(|m| {
                let theta = 2.0 * std::f64::consts::PI * m as f64 / CONTOUR_SAMPLES as f64;
                1.0 + 0.2 * (3.0 * theta).cos()
            })
            .collect();
        let scaled: Vec<f64> = contour.iter().map(|r| 7.5 * r).collect();
        let d1 = g.descriptor(&contour);
        let d2 = g.descriptor(&scaled);
        assert!(d1.dist(&d2) < 1e-9, "descriptors differ: {}", d1.dist(&d2));
    }

    #[test]
    fn data_is_clustered_by_family() {
        // Variants of the same family must be far closer to each other than
        // the typical inter-point distance, i.e. the NN distance must be
        // much smaller than for uniform data.
        use crate::uniform::UniformGenerator;
        let d = 12;
        let n = 400;
        let fourier = FourierGenerator::new(d).generate(n, 9);
        let uniform = UniformGenerator::new(d).generate(n, 9);
        let avg_nn = |pts: &[Point]| -> f64 {
            pts.iter()
                .map(|p| {
                    pts.iter()
                        .filter(|q| !std::ptr::eq(p, *q))
                        .map(|q| p.dist(q))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / pts.len() as f64
        };
        assert!(avg_nn(&fourier) < 0.5 * avg_nn(&uniform));
    }

    #[test]
    fn gear_contour_has_teeth() {
        // Sanity check of the contour synthesis itself: a gear radius
        // function oscillates many times around its mean.
        let g = FourierGenerator::new(4);
        let mut rng = seeded(0);
        // Generate contours until we know every family appears; just check
        // at least one contour has >= 8 mean crossings.
        let mut max_crossings = 0;
        for _ in 0..20 {
            let contour = g.sample_contour(&mut rng);
            let mean = contour.iter().sum::<f64>() / contour.len() as f64;
            let crossings = contour
                .windows(2)
                .filter(|w| (w[0] - mean).signum() != (w[1] - mean).signum())
                .count();
            max_crossings = max_crossings.max(crossings);
        }
        assert!(max_crossings >= 8, "max crossings {max_crossings}");
    }
}
