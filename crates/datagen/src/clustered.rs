//! Gaussian-mixture (clustered) data.
//!
//! Real feature databases are strongly clustered — the paper's CAD parts
//! are "a set of variants of CAD-parts and … therefore highly clustered"
//! (Section 5). This generator produces the same character synthetically:
//! a mixture of spherical Gaussians with configurable spread, clamped into
//! the unit data space.

use rand::Rng;

use parsim_geometry::Point;

use crate::rng::{normal, seeded};
use crate::DataGenerator;

/// Generates points from a mixture of spherical Gaussian clusters in
/// `[0,1]^d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteredGenerator {
    dim: usize,
    clusters: usize,
    std_dev: f64,
    /// If true, all cluster centers are drawn from one quadrant of the data
    /// space — the pathological case motivating recursive declustering
    /// (Section 4.3: "most data points are located in one quadrant of the
    /// hypercube").
    single_quadrant: bool,
}

impl ClusteredGenerator {
    /// Creates a generator with `clusters` Gaussian clusters of standard
    /// deviation `std_dev` per coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, `clusters == 0` or `std_dev` is not positive.
    pub fn new(dim: usize, clusters: usize, std_dev: f64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(clusters > 0, "need at least one cluster");
        assert!(std_dev > 0.0, "standard deviation must be positive");
        ClusteredGenerator {
            dim,
            clusters,
            std_dev,
            single_quadrant: false,
        }
    }

    /// Confines all cluster centers to the lower quadrant `[0, 0.5)^d`,
    /// producing the worst case for quadrant declustering.
    pub fn in_single_quadrant(mut self) -> Self {
        self.single_quadrant = true;
        self
    }
}

impl DataGenerator for ClusteredGenerator {
    fn dim(&self) -> usize {
        self.dim
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = seeded(seed);
        // Draw cluster centers away from the border so that most mass stays
        // in the cube even before clamping.
        let (lo, hi) = if self.single_quadrant {
            (0.05, 0.45)
        } else {
            (0.1, 0.9)
        };
        let centers: Vec<Vec<f64>> = (0..self.clusters)
            .map(|_| (0..self.dim).map(|_| rng.random_range(lo..hi)).collect())
            .collect();
        (0..n)
            .map(|_| {
                let c = &centers[rng.random_range(0..self.clusters)];
                Point::from_vec(
                    c.iter()
                        .map(|&m| normal(&mut rng, m, self.std_dev).clamp(0.0, 1.0))
                        .collect(),
                )
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "clustered"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_live_in_unit_cube() {
        let g = ClusteredGenerator::new(6, 4, 0.05);
        let pts = g.generate(1000, 11);
        assert_eq!(pts.len(), 1000);
        assert!(pts.iter().all(|p| p.in_unit_cube()));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = ClusteredGenerator::new(3, 2, 0.1);
        assert_eq!(g.generate(64, 5), g.generate(64, 5));
    }

    #[test]
    fn clustered_data_has_small_nn_distances() {
        // With tight clusters the average NN distance must be much smaller
        // than for uniform data of the same size.
        use crate::uniform::UniformGenerator;
        let d = 8;
        let n = 500;
        let clustered = ClusteredGenerator::new(d, 3, 0.01).generate(n, 2);
        let uniform = UniformGenerator::new(d).generate(n, 2);
        let avg_nn = |pts: &[Point]| -> f64 {
            pts.iter()
                .map(|p| {
                    pts.iter()
                        .filter(|q| !std::ptr::eq(p, *q))
                        .map(|q| p.dist(q))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / pts.len() as f64
        };
        assert!(avg_nn(&clustered) < 0.5 * avg_nn(&uniform));
    }

    #[test]
    fn single_quadrant_mode_concentrates_mass() {
        let g = ClusteredGenerator::new(5, 3, 0.02).in_single_quadrant();
        let pts = g.generate(2000, 7);
        let in_lower =
            pts.iter().filter(|p| p.iter().all(|&c| c < 0.5)).count() as f64 / pts.len() as f64;
        assert!(in_lower > 0.9, "fraction in lower quadrant = {in_lower}");
    }
}
