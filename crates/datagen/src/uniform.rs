//! Uniformly distributed points — the paper's synthetic workload.

use rand::Rng;

use parsim_geometry::Point;

use crate::rng::seeded;
use crate::DataGenerator;

/// Generates points uniformly distributed over `[0,1]^d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformGenerator {
    dim: usize,
}

impl UniformGenerator {
    /// Creates a generator for d-dimensional uniform data.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        UniformGenerator { dim }
    }
}

impl DataGenerator for UniformGenerator {
    fn dim(&self) -> usize {
        self.dim
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| Point::from_vec((0..self.dim).map(|_| rng.random::<f64>()).collect()))
            .collect()
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let g = UniformGenerator::new(7);
        let pts = g.generate(100, 1);
        assert_eq!(pts.len(), 100);
        assert!(pts.iter().all(|p| p.dim() == 7));
        assert!(pts.iter().all(|p| p.in_unit_cube()));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = UniformGenerator::new(4);
        assert_eq!(g.generate(50, 9), g.generate(50, 9));
        assert_ne!(g.generate(50, 9), g.generate(50, 10));
    }

    #[test]
    fn roughly_uniform_marginals() {
        let g = UniformGenerator::new(2);
        let pts = g.generate(50_000, 3);
        let mean_x = pts.iter().map(|p| p[0]).sum::<f64>() / pts.len() as f64;
        let below_half = pts.iter().filter(|p| p[1] < 0.5).count() as f64 / pts.len() as f64;
        assert!((mean_x - 0.5).abs() < 0.01);
        assert!((below_half - 0.5).abs() < 0.01);
    }
}
