//! Seeded workload generators for the similarity-search experiments.
//!
//! The paper evaluates on three kinds of data:
//!
//! * **uniformly distributed points** (d = 8..16) — [`UniformGenerator`];
//! * **Fourier points** corresponding to contours of industrial (CAD)
//!   parts — [`fourier::FourierGenerator`] synthesizes closed part contours
//!   from parameterized families and takes their real Fourier descriptors,
//!   so the vectors have the same provenance and the same clustered,
//!   correlated character as the paper's data set of CAD part variants;
//! * **text descriptors** characterizing substrings of large document sets
//!   — [`text::TextDescriptorGenerator`] builds a synthetic corpus with a
//!   word-list Markov chain and extracts letter-bigram histogram features
//!   of sliding-window substrings.
//!
//! [`ClusteredGenerator`] (Gaussian mixtures) and [`CorrelatedGenerator`]
//! (points near a low-dimensional subspace) provide the skewed
//! distributions the paper's Section 4.3 extensions target.
//!
//! Every generator is deterministic given its seed — all experiments in
//! this repository are reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clustered;
pub mod correlated;
pub mod fourier;
pub mod queries;
pub mod rng;
pub mod text;
pub mod uniform;

pub use clustered::ClusteredGenerator;
pub use correlated::CorrelatedGenerator;
pub use fourier::FourierGenerator;
pub use queries::QueryWorkload;
pub use text::TextDescriptorGenerator;
pub use uniform::UniformGenerator;

use parsim_geometry::Point;

/// A deterministic generator of d-dimensional feature vectors.
pub trait DataGenerator {
    /// Dimensionality of the generated points.
    fn dim(&self) -> usize;

    /// Generates `n` points using the given seed. The same `(n, seed)`
    /// always yields the same points.
    fn generate(&self, n: usize, seed: u64) -> Vec<Point>;

    /// A short human-readable name for experiment logs.
    fn name(&self) -> &'static str;
}
