//! Correlated data near a low-dimensional subspace.
//!
//! Section 4.3 of the paper distinguishes *clustered* data (fixed by
//! quantile splits) from *correlated* data, where a one-dimensional
//! quantile cannot balance the disks and recursive declustering is needed.
//! This generator produces points on a random line segment through the data
//! space with Gaussian noise — the canonical correlated distribution.

use rand::Rng;

use parsim_geometry::Point;

use crate::rng::{normal, seeded};
use crate::DataGenerator;

/// Generates points concentrated around a random line through `[0,1]^d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelatedGenerator {
    dim: usize,
    noise: f64,
}

impl CorrelatedGenerator {
    /// Creates a generator with the given per-coordinate noise level.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `noise` is negative.
    pub fn new(dim: usize, noise: f64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(noise >= 0.0, "noise must be non-negative");
        CorrelatedGenerator { dim, noise }
    }
}

impl DataGenerator for CorrelatedGenerator {
    fn dim(&self) -> usize {
        self.dim
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = seeded(seed);
        // The main diagonal with a random per-axis orientation: strongly
        // correlated in every pair of dimensions, so every 1-d marginal is
        // balanced at 0.5 even though the joint distribution is degenerate.
        let flip: Vec<bool> = (0..self.dim).map(|_| rng.random::<bool>()).collect();
        (0..n)
            .map(|_| {
                let t: f64 = rng.random();
                Point::from_vec(
                    flip.iter()
                        .map(|&f| {
                            let base = if f { 1.0 - t } else { t };
                            normal(&mut rng, base, self.noise).clamp(0.0, 1.0)
                        })
                        .collect(),
                )
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "correlated"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_live_in_unit_cube() {
        let g = CorrelatedGenerator::new(10, 0.02);
        let pts = g.generate(500, 3);
        assert!(pts.iter().all(|p| p.in_unit_cube() && p.dim() == 10));
    }

    #[test]
    fn marginals_are_balanced_but_joint_is_degenerate() {
        let g = CorrelatedGenerator::new(4, 0.01);
        let pts = g.generate(20_000, 5);
        // Every 1-d marginal median is near 0.5 …
        for axis in 0..4 {
            let below = pts.iter().filter(|p| p[axis] < 0.5).count() as f64 / pts.len() as f64;
            assert!((below - 0.5).abs() < 0.05, "axis {axis}: {below}");
        }
        // … yet the joint distribution is degenerate: the two quadrants on
        // the correlation diagonal hold nearly all of the mass (noise lets
        // a few center points stray into other quadrants).
        use parsim_geometry::QuadrantSplitter;
        let q = QuadrantSplitter::midpoint(4).unwrap();
        let mut counts = std::collections::HashMap::new();
        for p in &pts {
            *counts.entry(q.bucket_of(p)).or_insert(0usize) += 1;
        }
        let mut loads: Vec<usize> = counts.values().copied().collect();
        loads.sort_unstable_by(|a, b| b.cmp(a));
        let top2: usize = loads.iter().take(2).sum();
        assert!(
            top2 as f64 > 0.9 * pts.len() as f64,
            "top-2 quadrants hold only {top2} of {} points",
            pts.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = CorrelatedGenerator::new(3, 0.05);
        assert_eq!(g.generate(32, 1), g.generate(32, 1));
    }
}
