//! Property tests of the workload generators.

use proptest::prelude::*;

use parsim_datagen::{
    ClusteredGenerator, CorrelatedGenerator, DataGenerator, FourierGenerator, QueryWorkload,
    TextDescriptorGenerator, UniformGenerator,
};

fn generators(dim: usize) -> Vec<Box<dyn DataGenerator>> {
    vec![
        Box::new(UniformGenerator::new(dim)),
        Box::new(ClusteredGenerator::new(dim, 3, 0.05)),
        Box::new(CorrelatedGenerator::new(dim, 0.03)),
        Box::new(FourierGenerator::new(dim)),
        Box::new(TextDescriptorGenerator::new(dim)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generator produces exactly `n` unit-cube points of the right
    /// dimensionality, deterministically per seed.
    #[test]
    fn generators_are_total_and_deterministic(
        dim in 2usize..=16,
        n in 1usize..=200,
        seed in any::<u64>(),
    ) {
        for gen in generators(dim) {
            let a = gen.generate(n, seed);
            prop_assert_eq!(a.len(), n, "{}", gen.name());
            for p in &a {
                prop_assert_eq!(p.dim(), dim, "{}", gen.name());
                prop_assert!(p.in_unit_cube(), "{}", gen.name());
            }
            let b = gen.generate(n, seed);
            prop_assert_eq!(a, b, "{} not deterministic", gen.name());
        }
    }

    /// Different seeds produce different streams. Restricted to realistic
    /// dimensionalities: at d = 2 a text descriptor has only two histogram
    /// buckets and saturates to the same vector regardless of seed.
    #[test]
    fn seeds_differentiate_streams(dim in 6usize..=16, seed in any::<u64>()) {
        for gen in generators(dim) {
            let a = gen.generate(64, seed);
            let b = gen.generate(64, seed.wrapping_add(1));
            prop_assert_ne!(a, b, "{} ignored the seed", gen.name());
        }
    }

    /// Prefix stability: generating more points extends the stream without
    /// changing the prefix — the property `QueryWorkload::DataLike` relies
    /// on to produce data-distributed queries disjoint from the stored set.
    #[test]
    fn streams_are_prefix_stable(dim in 2usize..=10, n in 8usize..=64, seed in any::<u64>()) {
        for gen in generators(dim) {
            let short = gen.generate(n, seed);
            let long = gen.generate(n + 16, seed);
            prop_assert_eq!(&long[..n], &short[..], "{} not prefix-stable", gen.name());
        }
    }

    /// Data-like query workloads are exactly the continuation of the data
    /// stream past the stored prefix (by construction they are distinct
    /// stream positions; low-dimensional generators may still emit
    /// value-equal points, e.g. 2-d Fourier descriptors on the unit
    /// circle, so the contract is positional, not value inequality).
    #[test]
    fn datalike_queries_continue_the_stream(dim in 2usize..=10, seed in any::<u64>()) {
        for gen in generators(dim) {
            let queries =
                QueryWorkload::DataLike { data_count: 50 }.generate(gen.as_ref(), 10, seed);
            let stream = gen.generate(60, seed);
            prop_assert_eq!(&queries[..], &stream[50..], "{}", gen.name());
        }
    }
}
