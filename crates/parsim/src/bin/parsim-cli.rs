//! `parsim-cli` — command-line front end for the parallel similarity
//! search engine.
//!
//! ```text
//! parsim-cli generate --kind fourier --dim 16 --n 20000 --seed 1 --out parts.csv
//! parsim-cli query --data parts.csv --disks 16 --method near-optimal --k 10
//! parsim-cli verify --max-dim 12
//! parsim-cli staircase --max-dim 32
//! ```
//!
//! CSV format: one feature vector per line, coordinates separated by
//! commas; an optional leading `id,` column is detected automatically.

use std::io::{BufRead, BufWriter, Write};
use std::sync::Arc;

use parsim::decluster::near_optimal::{color_lower_bound, colors_required};
use parsim::decluster::quantile::median_splits;
use parsim::parallel::DeclusteredXTree;
use parsim::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("staircase") => cmd_staircase(&args[1..]),
        _ => {
            eprintln!("usage: parsim-cli <generate|query|verify|staircase> [options]");
            eprintln!("  generate  --kind <uniform|clustered|correlated|fourier|text>");
            eprintln!("            --dim D --n N [--seed S] --out FILE.csv");
            eprintln!("  query     --data FILE.csv [--disks N] [--method M] [--k K]");
            eprintln!(
                "            [--queries Q]   M in round-robin|disk-modulo|fx|hilbert|near-optimal"
            );
            eprintln!("  verify    [--max-dim D]   near-optimality of every method per dimension");
            eprintln!("  staircase [--max-dim D]   colors required by col (paper Fig. 10)");
            2
        }
    };
    std::process::exit(code);
}

// ----- option parsing --------------------------------------------------------

fn opt<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn opt_usize(args: &[String], name: &str, default: usize) -> usize {
    opt(args, name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| die(&format!("{name} needs a number")))
        })
        .unwrap_or(default)
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

// ----- generate --------------------------------------------------------------

fn make_generator(kind: &str, dim: usize) -> Box<dyn DataGenerator> {
    match kind {
        "uniform" => Box::new(UniformGenerator::new(dim)),
        "clustered" => Box::new(ClusteredGenerator::new(dim, 8, 0.05)),
        "correlated" => Box::new(CorrelatedGenerator::new(dim, 0.05)),
        "fourier" => Box::new(FourierGenerator::new(dim)),
        "text" => Box::new(TextDescriptorGenerator::new(dim)),
        other => die(&format!("unknown generator kind '{other}'")),
    }
}

fn cmd_generate(args: &[String]) -> i32 {
    let kind = opt(args, "--kind").unwrap_or("uniform");
    let dim = opt_usize(args, "--dim", 16);
    let n = opt_usize(args, "--n", 10_000);
    let seed = opt_usize(args, "--seed", 42) as u64;
    let out = opt(args, "--out").unwrap_or_else(|| die("--out FILE.csv is required"));

    let generator = make_generator(kind, dim);
    let points = generator.generate(n, seed);
    let file =
        std::fs::File::create(out).unwrap_or_else(|e| die(&format!("cannot create {out}: {e}")));
    let mut w = BufWriter::new(file);
    for (i, p) in points.iter().enumerate() {
        let coords: Vec<String> = p.iter().map(|c| format!("{c:.9}")).collect();
        writeln!(w, "{i},{}", coords.join(",")).unwrap_or_else(|e| die(&e.to_string()));
    }
    w.flush().unwrap_or_else(|e| die(&e.to_string()));
    println!("wrote {n} {kind} vectors (d = {dim}) to {out}");
    0
}

// ----- query -------------------------------------------------------------------

/// Parses one CSV line into `(id, coords)`. A leading integer column is
/// treated as the id; otherwise the row index is used.
fn parse_line(line: &str, row: usize) -> Result<(u64, Vec<f64>), String> {
    let fields: Vec<&str> = line.split(',').map(str::trim).collect();
    if fields.is_empty() || (fields.len() == 1 && fields[0].is_empty()) {
        return Err("empty line".into());
    }
    // Heuristic: a first field that parses as u64 but not as a fraction in
    // [0,1] with a '.' is an id column.
    let (id, start) = match fields[0].parse::<u64>() {
        Ok(v) if !fields[0].contains('.') && fields.len() > 1 => (v, 1),
        _ => (row as u64, 0),
    };
    let mut coords = Vec::with_capacity(fields.len() - start);
    for f in &fields[start..] {
        coords.push(f.parse::<f64>().map_err(|_| format!("bad number '{f}'"))?);
    }
    Ok((id, coords))
}

fn load_csv(path: &str) -> (Vec<Point>, Vec<u64>) {
    let file =
        std::fs::File::open(path).unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
    let reader = std::io::BufReader::new(file);
    let mut points = Vec::new();
    let mut ids = Vec::new();
    for (row, line) in reader.lines().enumerate() {
        let line = line.unwrap_or_else(|e| die(&e.to_string()));
        if line.trim().is_empty() {
            continue;
        }
        let (id, coords) =
            parse_line(&line, row).unwrap_or_else(|e| die(&format!("line {}: {e}", row + 1)));
        let point = Point::new(coords).unwrap_or_else(|e| die(&format!("line {}: {e}", row + 1)));
        points.push(point);
        ids.push(id);
    }
    if points.is_empty() {
        die("no vectors in input");
    }
    let dim = points[0].dim();
    if points.iter().any(|p| p.dim() != dim) {
        die("mixed dimensionalities in input");
    }
    (points, ids)
}

fn cmd_query(args: &[String]) -> i32 {
    let path = opt(args, "--data").unwrap_or_else(|| die("--data FILE.csv is required"));
    let disks = opt_usize(args, "--disks", 16);
    let k = opt_usize(args, "--k", 10);
    let queries_n = opt_usize(args, "--queries", 3);
    let method = opt(args, "--method").unwrap_or("near-optimal");

    let (points, ids) = load_csv(path);
    let dim = points[0].dim();
    println!("loaded {} vectors (d = {dim}) from {path}", points.len());

    let config = EngineConfig::paper_defaults(dim);
    let engine = match method {
        "round-robin" => DeclusteredXTree::build(
            &points,
            Arc::new(RoundRobin::new(disks).unwrap_or_else(|e| die(&e.to_string()))),
            config,
        ),
        "disk-modulo" => DeclusteredXTree::build_bucket(
            &points,
            Arc::new(DiskModulo::new(disks).unwrap_or_else(|e| die(&e.to_string()))),
            median_splits(&points).unwrap_or_else(|e| die(&e.to_string())),
            config,
        ),
        "fx" => DeclusteredXTree::build_bucket(
            &points,
            Arc::new(FxXor::new(disks).unwrap_or_else(|e| die(&e.to_string()))),
            median_splits(&points).unwrap_or_else(|e| die(&e.to_string())),
            config,
        ),
        "hilbert" => DeclusteredXTree::build_bucket(
            &points,
            Arc::new(HilbertDecluster::new(dim, disks).unwrap_or_else(|e| die(&e.to_string()))),
            median_splits(&points).unwrap_or_else(|e| die(&e.to_string())),
            config,
        ),
        "near-optimal" => DeclusteredXTree::build_near_optimal(&points, disks, config),
        other => die(&format!("unknown method '{other}'")),
    }
    .unwrap_or_else(|e| die(&e.to_string()));

    println!(
        "engine: {} on {} disks\n",
        engine.declusterer_name(),
        engine.disks()
    );
    // Query with the first few stored vectors (self-similarity queries).
    for qi in 0..queries_n.min(points.len()) {
        let (result, cost) = engine
            .knn(&points[qi], k)
            .unwrap_or_else(|e| die(&e.to_string()));
        println!(
            "query #{qi} (vector id {}): {k}-NN, {} pages busiest disk / {} total, {:.1} ms modeled",
            ids[qi],
            cost.max_reads,
            cost.total_reads,
            cost.parallel_time.as_secs_f64() * 1e3
        );
        for nb in result {
            println!(
                "    id {:>8}  distance {:.6}",
                ids[nb.item as usize], nb.dist
            );
        }
    }
    0
}

// ----- verify / staircase ------------------------------------------------------

fn cmd_verify(args: &[String]) -> i32 {
    let max_dim = opt_usize(args, "--max-dim", 12).min(20);
    println!("near-optimality (all direct+indirect neighbors on different disks):\n");
    println!(
        "  {:>4} {:>7} {:>12} {:>6} {:>9} {:>13}",
        "dim", "disks", "disk-modulo", "fx", "hilbert", "near-optimal"
    );
    for dim in 2..=max_dim {
        let graph = DiskAssignmentGraph::new(dim);
        let disks = colors_required(dim) as usize;
        let verdict = |ok: bool| if ok { "OK" } else { "violates" };
        let dm = graph
            .verify(&DiskModulo::new(disks).expect("disks > 0"))
            .is_ok();
        let fx = graph.verify(&FxXor::new(disks).expect("disks > 0")).is_ok();
        let hi = graph
            .verify(&HilbertDecluster::new(dim, disks).expect("valid dim"))
            .is_ok();
        let no = graph
            .verify(&NearOptimal::with_optimal_disks(dim).expect("valid dim"))
            .is_ok();
        println!(
            "  {:>4} {:>7} {:>12} {:>6} {:>9} {:>13}",
            dim,
            disks,
            verdict(dm),
            verdict(fx),
            verdict(hi),
            verdict(no)
        );
    }
    0
}

fn cmd_staircase(args: &[String]) -> i32 {
    let max_dim = opt_usize(args, "--max-dim", 32).min(63);
    println!("colors required by col (paper Figure 10):\n");
    println!(
        "  {:>4} {:>10} {:>10} {:>9}",
        "dim", "lower d+1", "col", "upper 2d"
    );
    for dim in 1..=max_dim {
        println!(
            "  {:>4} {:>10} {:>10} {:>9}",
            dim,
            color_lower_bound(dim),
            colors_required(dim),
            2 * dim
        );
    }
    0
}

#[cfg(test)]
mod tests {
    use super::parse_line;

    #[test]
    fn parses_plain_coordinates() {
        let (id, coords) = parse_line("0.5, 0.25, 1.0", 7).unwrap();
        assert_eq!(id, 7);
        assert_eq!(coords, vec![0.5, 0.25, 1.0]);
    }

    #[test]
    fn parses_leading_id_column() {
        let (id, coords) = parse_line("42,0.5,0.25", 0).unwrap();
        assert_eq!(id, 42);
        assert_eq!(coords, vec![0.5, 0.25]);
    }

    #[test]
    fn single_integer_field_is_a_coordinate() {
        // "1" alone cannot be an id column (there would be no coordinates).
        let (id, coords) = parse_line("1", 3).unwrap();
        assert_eq!(id, 3);
        assert_eq!(coords, vec![1.0]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_line("a,b,c", 0).is_err());
        assert!(parse_line("", 0).is_err());
    }
}
