//! # parsim — fast parallel similarity search in multimedia databases
//!
//! A complete Rust implementation of the parallel nearest-neighbor search
//! system of Berchtold, Böhm, Braunmüller, Keim and Kriegel (*Fast
//! Parallel Similarity Search in Multimedia Databases*, SIGMOD 1997):
//! high-dimensional feature vectors are distributed over an array of disks
//! by a **near-optimal declustering** (a graph coloring of the quadrant
//! neighborhood graph), indexed per disk with an **X-tree**, and queried
//! with parallel k-nearest-neighbor search whose cost is gated by the
//! most-loaded disk.
//!
//! ## Quick start
//!
//! ```
//! use parsim::prelude::*;
//!
//! // 1. Some feature vectors (8-d uniform here; see parsim::datagen for
//! //    CAD Fourier descriptors and text descriptors).
//! let data = UniformGenerator::new(8).generate(2_000, 42);
//!
//! // 2. Build the parallel engine on 8 simulated disks with the paper's
//! //    near-optimal declustering.
//! let engine = ParallelKnnEngine::builder(8).disks(8).build(&data).unwrap();
//!
//! // 3. Ask for the 10 most similar objects.
//! let query = UniformGenerator::new(8).generate(1, 7).pop().unwrap();
//! let (neighbors, cost) = engine.knn(&query, 10).unwrap();
//! assert_eq!(neighbors.len(), 10);
//! assert!(neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
//!
//! // The cost records the paper's metric: pages read per disk, with the
//! // busiest disk gating the parallel search time.
//! assert!(cost.max_reads <= cost.total_reads);
//! ```
//!
//! ## Batched queries and per-query traces
//!
//! [`ParallelKnnEngine::knn`](parallel::ParallelKnnEngine::knn) runs one
//! thread per disk (the paper's Var. 3 shared-bound search);
//! [`ParallelKnnEngine::knn_batch`](parallel::ParallelKnnEngine::knn_batch)
//! answers a whole workload on a bounded worker pool. Both report a
//! [`QueryTrace`](parallel::QueryTrace) with per-disk page counts, pruning and cache counters,
//! and measured wall-clock next to modeled service time:
//!
//! ```
//! use parsim::prelude::*;
//!
//! let data = UniformGenerator::new(8).generate(2_000, 42);
//! let engine = ParallelKnnEngine::builder(8).disks(8).build(&data).unwrap();
//!
//! let queries = UniformGenerator::new(8).generate(16, 7);
//! let results = engine.knn_batch_with(&queries, 10, 4).unwrap();
//! assert_eq!(results.len(), queries.len());
//!
//! let (neighbors, trace): &(Vec<Neighbor>, QueryTrace) = &results[0];
//! assert_eq!(neighbors.len(), 10);
//! assert_eq!(trace.per_disk_pages.len(), engine.disks());
//! assert!(trace.total_pages() >= trace.max_pages());
//! assert!(trace.modeled_speedup() >= 1.0);
//!
//! // Traces serialize to JSON for offline analysis.
//! use parsim::serde::Serialize;
//! assert!(trace.to_json().contains("per_disk_pages"));
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`geometry`] | points, hyper-rectangles, metrics, quadrants, high-dim math |
//! | [`datagen`] | seeded generators: uniform, clustered, correlated, Fourier, text |
//! | [`storage`] | simulated disks, disk arrays, service-time model |
//! | [`hilbert`] | d-dimensional Hilbert and Z-order curves |
//! | [`index`] | R\*-tree / X-tree with RKV and HS k-NN |
//! | [`decluster`] | round robin, disk modulo, FX, Hilbert, **near-optimal** |
//! | [`parallel`] | the parallel engine, sequential baseline and metrics |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod paper;

pub use parsim_datagen as datagen;
pub use parsim_decluster as decluster;
pub use parsim_geometry as geometry;
pub use parsim_hilbert as hilbert;
pub use parsim_index as index;
pub use parsim_parallel as parallel;
pub use parsim_storage as storage;
pub use serde;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use parsim_datagen::{
        ClusteredGenerator, CorrelatedGenerator, DataGenerator, FourierGenerator, QueryWorkload,
        TextDescriptorGenerator, UniformGenerator,
    };
    pub use parsim_decluster::{
        BucketBased, BucketDecluster, Declusterer, DiskAssignmentGraph, DiskModulo, FxXor,
        HilbertDecluster, NearOptimal, RecursiveDeclusterer, ReplicaDeclusterer, RoundRobin,
    };
    pub use parsim_geometry::{Euclidean, HyperRect, Metric, Point, QuadrantSplitter};
    pub use parsim_index::{
        forest_knn, forest_knn_traced, forest_knn_traced_tiered, CachingSink, KnnAlgorithm,
        Neighbor, NnIterator, ScanTier, SearchStats, SharedBound, SpatialTree, TreeParams,
        TreeVariant,
    };
    pub use parsim_parallel::{
        run_knn_workload, run_traced_workload, AdmissionConfig, DeclusteredXTree, DegradedInfo,
        EngineBuilder, EngineConfig, EngineError, EngineMetrics, ExecutionMode, FaultPolicy,
        IngestConfig, ParallelKnnEngine, PendingQuery, QueryOptions, QueryResult, QueryTrace,
        RetryPolicy, SequentialEngine, SplitStrategy, ThroughputReport, WorkloadCost,
    };
    pub use parsim_storage::{
        DiskArray, DiskModel, FaultInjector, FaultKind, LruTracker, QueryCost, ShardedLru, SimDisk,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_a_working_pipeline() {
        let data = UniformGenerator::new(6).generate(500, 1);
        let engine = ParallelKnnEngine::builder(6).disks(4).build(&data).unwrap();
        let (res, _) = engine.knn(&data[0], 3).unwrap();
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn facade_exposes_the_pooled_backbone() {
        let data = UniformGenerator::new(6).generate(500, 1);
        let engine = ParallelKnnEngine::builder(6)
            .disks(4)
            .execution(ExecutionMode::Pooled)
            .build(&data)
            .unwrap();
        let handle = engine.submit(&data[0], &QueryOptions::new(3)).unwrap();
        let result = handle.wait().unwrap();
        assert_eq!(result.neighbors[0].dist, 0.0);
    }

    #[test]
    fn facade_exposes_fault_tolerance() {
        let data = UniformGenerator::new(6).generate(500, 1);
        let engine = ParallelKnnEngine::builder(6)
            .disks(9)
            .replicas(1)
            .build(&data)
            .unwrap();
        engine.faults().fail(0);
        let result = engine.query(&data[0], &QueryOptions::traced(3)).unwrap();
        assert_eq!(result.neighbors[0].dist, 0.0);
        assert!(result.trace.unwrap().degraded.is_some());
    }
}
