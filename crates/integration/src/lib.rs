//! Anchor crate for the repository-root `tests/` directory; all test
//! sources live there (see `Cargo.toml` `[[test]]` entries).
