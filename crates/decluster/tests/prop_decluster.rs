//! Property tests of the declustering methods.

use proptest::prelude::*;

use parsim_decluster::graph::DiskAssignmentGraph;
use parsim_decluster::methods::BucketDecluster;
use parsim_decluster::near_optimal::{col, colors_required, NearOptimal};
use parsim_decluster::{DiskModulo, FxXor, HilbertDecluster};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// col(0) = 0 and col is its own inverse family under XOR: applying a
    /// bucket twice cancels (col(b ^ b) = 0).
    #[test]
    fn col_xor_group_structure(dim in 1usize..=48, a in any::<u64>(), b in any::<u64>()) {
        let mask = (1u64 << dim) - 1;
        let (a, b) = (a & mask, b & mask);
        prop_assert_eq!(col(0, dim), 0);
        prop_assert_eq!(col(a ^ a, dim), 0);
        // Associativity through distributivity.
        prop_assert_eq!(
            col(a, dim) ^ col(b, dim) ^ col(a ^ b, dim),
            0
        );
    }

    /// The NearOptimal assignment at the optimal disk count is proper on a
    /// random sample of edges even at dimensions too large for exhaustive
    /// verification.
    #[test]
    fn near_optimal_proper_on_sampled_edges(dim in 2usize..=48, bucket in any::<u64>()) {
        let mask = (1u64 << dim) - 1;
        let b = bucket & mask;
        let m = NearOptimal::with_optimal_disks(dim).unwrap();
        let disk = m.disk_of_bucket(b, dim);
        for i in 0..dim {
            prop_assert_ne!(disk, m.disk_of_bucket(b ^ (1 << i), dim));
            for j in (i + 1)..dim {
                prop_assert_ne!(disk, m.disk_of_bucket(b ^ (1 << i) ^ (1 << j), dim));
            }
        }
    }

    /// Every method's assignment is total, deterministic and in range.
    #[test]
    fn assignments_total_and_in_range(dim in 2usize..=16, disks in 1usize..=16, bucket in any::<u64>()) {
        let mask = (1u64 << dim) - 1;
        let b = bucket & mask;
        let methods: Vec<Box<dyn BucketDecluster>> = vec![
            Box::new(DiskModulo::new(disks).unwrap()),
            Box::new(FxXor::new(disks).unwrap()),
            Box::new(HilbertDecluster::new(dim, disks).unwrap()),
            Box::new(NearOptimal::new(dim, disks.min(colors_required(dim) as usize)).unwrap()),
        ];
        for m in &methods {
            let d = m.disk_of_bucket(b, dim);
            prop_assert!(d < m.disks(), "{}", m.name());
            prop_assert_eq!(d, m.disk_of_bucket(b, dim));
        }
    }

    /// Violation counts never increase when disks are added to the Hilbert
    /// method beyond the bucket count (sanity of count_violations).
    #[test]
    fn hilbert_with_enough_disks_is_proper(dim in 2usize..=6) {
        let graph = DiskAssignmentGraph::new(dim);
        let enough = 1usize << dim;
        let m = HilbertDecluster::new(dim, enough).unwrap();
        let (d, i) = graph.count_violations(&m);
        prop_assert_eq!((d, i), (0, 0));
    }
}
