//! Striped near-optimal declustering: more disks than colors.
//!
//! The coloring function `col` can use at most `nextpow2(d+1)` disks —
//! Section 4.3 shows how to use *fewer* (complement folding), but the
//! paper has no answer for *more*. This extension provides one: with
//! `n = C · s` disks, each color class gets its own **stripe group** of
//! `s` disks, and the points (hence pages) of each bucket are round-robin
//! striped within their group:
//!
//! ```text
//! disk(p, seq) = col(bucket(p)) · s + (seq mod s)
//! ```
//!
//! The near-optimality guarantee is preserved — neighboring buckets map to
//! *disjoint disk groups* — and within a bucket the stripe spreads its
//! pages, so a query that reads many pages of one quadrant also engages
//! several disks. This also improves saturated-batch throughput (see the
//! `ext1` experiment).
//!
//! Regime note: striping pays off when buckets hold many pages relative to
//! the query sphere (high dimensions, large databases). In low dimensions
//! the thinner per-disk point sets inflate the total page count — the same
//! boundary effect that penalizes item-level round robin — and can cancel
//! the gain.

use parsim_geometry::{Point, QuadrantSplitter};

use crate::methods::Declusterer;
use crate::near_optimal::{colors_required, NearOptimal};
use crate::{BucketDecluster, DeclusterError};

/// Near-optimal declustering over `colors × stripe` disks.
#[derive(Debug, Clone)]
pub struct StripedNearOptimal {
    base: NearOptimal,
    splitter: QuadrantSplitter,
    stripe: usize,
}

impl StripedNearOptimal {
    /// Creates a striped declusterer: the full color count of `dim` times
    /// a stripe factor of `stripe` disks per color.
    pub fn new(splitter: QuadrantSplitter, stripe: usize) -> Result<Self, DeclusterError> {
        if stripe == 0 {
            return Err(DeclusterError::ZeroDisks);
        }
        let dim = splitter.dim();
        let base = NearOptimal::with_optimal_disks(dim)?;
        Ok(StripedNearOptimal {
            base,
            splitter,
            stripe,
        })
    }

    /// The stripe width (disks per color group).
    pub fn stripe(&self) -> usize {
        self.stripe
    }

    /// The disk group (first disk, width) a bucket's pages live on.
    pub fn group_of_bucket(&self, bucket: u64) -> (usize, usize) {
        let color = self.base.disk_of_bucket(bucket, self.splitter.dim());
        (color * self.stripe, self.stripe)
    }
}

impl Declusterer for StripedNearOptimal {
    fn name(&self) -> String {
        format!("near-optimal-striped(x{})", self.stripe)
    }

    fn disks(&self) -> usize {
        colors_required(self.splitter.dim()) as usize * self.stripe
    }

    fn assign(&self, seq: u64, p: &Point) -> usize {
        let (first, width) = self.group_of_bucket(self.splitter.bucket_of(p));
        first + (seq as usize % width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_datagen::{DataGenerator, UniformGenerator};
    use parsim_geometry::quadrant::all_neighbors;

    fn splitter(dim: usize) -> QuadrantSplitter {
        QuadrantSplitter::midpoint(dim).unwrap()
    }

    #[test]
    fn disk_count_is_colors_times_stripe() {
        let s = StripedNearOptimal::new(splitter(7), 4).unwrap();
        assert_eq!(s.disks(), 8 * 4);
        assert_eq!(s.stripe(), 4);
        assert!(StripedNearOptimal::new(splitter(7), 0).is_err());
    }

    #[test]
    fn neighboring_buckets_get_disjoint_groups() {
        let dim = 8;
        let s = StripedNearOptimal::new(splitter(dim), 3).unwrap();
        for b in 0..(1u64 << dim) {
            let (first_b, w) = s.group_of_bucket(b);
            for c in all_neighbors(b, dim) {
                let (first_c, _) = s.group_of_bucket(c);
                // Groups of neighbors must not overlap: they are aligned
                // blocks of width w, so distinct starts suffice.
                assert_ne!(first_b, first_c, "buckets {b:#b} and {c:#b}");
                assert!(first_b.abs_diff(first_c) >= w);
            }
        }
    }

    #[test]
    fn stripe_spreads_within_bucket() {
        let dim = 5;
        let s = StripedNearOptimal::new(splitter(dim), 4).unwrap();
        // Many points in one quadrant must cover the whole stripe group.
        let p = Point::new(vec![0.1; dim]).unwrap();
        let mut disks = std::collections::HashSet::new();
        for seq in 0..16 {
            disks.insert(s.assign(seq, &p));
        }
        assert_eq!(disks.len(), 4);
        let (first, width) = s.group_of_bucket(0);
        assert!(disks.iter().all(|&d| d >= first && d < first + width));
    }

    #[test]
    fn uniform_load_balances_across_all_disks() {
        let dim = 7; // 8 colors
        let stripe = 2;
        let s = StripedNearOptimal::new(splitter(dim), stripe).unwrap();
        let pts = UniformGenerator::new(dim).generate(16_000, 3);
        let mut loads = vec![0u64; s.disks()];
        for (i, p) in pts.iter().enumerate() {
            loads[s.assign(i as u64, p)] += 1;
        }
        let avg = 16_000.0 / s.disks() as f64;
        let max = *loads.iter().max().unwrap() as f64;
        assert!(max / avg < 1.5, "loads {loads:?}");
        assert!(loads.iter().all(|&l| l > 0));
    }
}
