//! The disk assignment graph and near-optimality verification.
//!
//! Definition 5 of the paper: the **disk assignment graph** `G_d = (V, E)`
//! has the bucket numbers `V = {0, …, 2^d − 1}` as vertices and an edge for
//! every direct or indirect neighborhood. A declustering is *near-optimal*
//! (Definition 4) iff it is a proper coloring of this graph. This module
//! verifies arbitrary [`BucketDecluster`] implementations against that
//! definition — it is how we reproduce Lemma 1 (disk modulo, FX and
//! Hilbert are **not** near-optimal, Figure 7) — and contains an exhaustive
//! backtracking search used to confirm that the staircase color count of
//! Lemma 6 is truly minimal for small dimensions.

use parsim_geometry::quadrant::{
    all_neighbors, are_direct_neighbors, direct_neighbors, indirect_neighbors, BucketId,
};

use crate::methods::BucketDecluster;

/// The kind of neighborhood an edge represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// The colliding buckets differ in exactly one bit.
    Direct,
    /// The colliding buckets differ in exactly two bits.
    Indirect,
}

/// A single near-optimality violation: two neighboring buckets on the same
/// disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// First bucket of the colliding pair.
    pub bucket_a: BucketId,
    /// Second bucket of the colliding pair.
    pub bucket_b: BucketId,
    /// The shared disk.
    pub disk: usize,
    /// Whether the pair is a direct or indirect neighborhood.
    pub kind: ViolationKind,
}

/// The disk assignment graph of a d-dimensional data space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskAssignmentGraph {
    dim: usize,
}

impl DiskAssignmentGraph {
    /// Creates the graph `G_d`. Verification enumerates all `2^d` vertices,
    /// so `dim` is limited to 24 (16.7M vertices) to keep exhaustive checks
    /// tractable.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is 0 or greater than 24.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0 && dim <= 24, "graph dimension must be in 1..=24");
        DiskAssignmentGraph { dim }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vertices, `2^d`.
    pub fn vertex_count(&self) -> u64 {
        1u64 << self.dim
    }

    /// Number of edges: `2^d · (d + C(d,2)) / 2`.
    pub fn edge_count(&self) -> u64 {
        let d = self.dim as u64;
        (1u64 << self.dim) * (d + d * (d - 1) / 2) / 2
    }

    /// Checks whether `method` properly colors the graph, i.e. is a
    /// near-optimal declustering per Definition 4. Returns the first
    /// violation found, or `Ok(())`.
    pub fn verify(&self, method: &dyn BucketDecluster) -> Result<(), Violation> {
        for b in 0..self.vertex_count() {
            let disk_b = method.disk_of_bucket(b, self.dim);
            for c in all_neighbors(b, self.dim) {
                if c < b {
                    continue; // each undirected edge once
                }
                if method.disk_of_bucket(c, self.dim) == disk_b {
                    return Err(Violation {
                        bucket_a: b,
                        bucket_b: c,
                        disk: disk_b,
                        kind: if are_direct_neighbors(b, c) {
                            ViolationKind::Direct
                        } else {
                            ViolationKind::Indirect
                        },
                    });
                }
            }
        }
        Ok(())
    }

    /// Counts all violations, split into (direct, indirect) collisions —
    /// the quantitative version of [`DiskAssignmentGraph::verify`] used to
    /// compare how badly each classical method misses near-optimality.
    pub fn count_violations(&self, method: &dyn BucketDecluster) -> (u64, u64) {
        let mut direct = 0;
        let mut indirect = 0;
        for b in 0..self.vertex_count() {
            let disk_b = method.disk_of_bucket(b, self.dim);
            for c in direct_neighbors(b, self.dim) {
                if c > b && method.disk_of_bucket(c, self.dim) == disk_b {
                    direct += 1;
                }
            }
            for c in indirect_neighbors(b, self.dim) {
                if c > b && method.disk_of_bucket(c, self.dim) == disk_b {
                    indirect += 1;
                }
            }
        }
        (direct, indirect)
    }

    /// Exhaustively decides whether the graph admits a proper coloring with
    /// `colors` colors, by backtracking in bucket-number order with
    /// symmetry breaking (vertex 0 is pinned to color 0).
    ///
    /// Exponential in the worst case — intended for `dim ≤ 4`, where it
    /// confirms that the paper's staircase (Lemma 6) is optimal: no
    /// coloring with fewer than `nextpow2(d+1)` colors exists.
    pub fn colorable_with(&self, colors: usize) -> bool {
        let n = self.vertex_count() as usize;
        let mut assignment: Vec<Option<usize>> = vec![None; n];
        assignment[0] = Some(0);
        self.backtrack(&mut assignment, 1, colors)
    }

    fn backtrack(&self, assignment: &mut Vec<Option<usize>>, vertex: usize, colors: usize) -> bool {
        if vertex == assignment.len() {
            return true;
        }
        'next_color: for color in 0..colors {
            for nb in all_neighbors(vertex as BucketId, self.dim) {
                if let Some(c) = assignment[nb as usize] {
                    if c == color {
                        continue 'next_color;
                    }
                }
            }
            assignment[vertex] = Some(color);
            if self.backtrack(assignment, vertex + 1, colors) {
                return true;
            }
            assignment[vertex] = None;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{DiskModulo, FxXor, HilbertDecluster};
    use crate::near_optimal::{colors_required, NearOptimal};

    #[test]
    fn graph_counts() {
        let g = DiskAssignmentGraph::new(3);
        assert_eq!(g.vertex_count(), 8);
        // d + C(d,2) = 3 + 3 = 6 incident edges per vertex, 8*6/2 = 24.
        assert_eq!(g.edge_count(), 24);
    }

    #[test]
    fn lemma_1_classical_methods_are_not_near_optimal() {
        // The paper's Figure 7: the 3-d counterexample.
        let g = DiskAssignmentGraph::new(3);
        let n = 4; // the optimal color count for d = 3
        assert!(g.verify(&DiskModulo::new(n).unwrap()).is_err());
        assert!(g.verify(&FxXor::new(n).unwrap()).is_err());
        assert!(g.verify(&HilbertDecluster::new(3, n).unwrap()).is_err());
        // … and a near-optimal declustering exists (right part of Fig. 7).
        assert!(g
            .verify(&NearOptimal::with_optimal_disks(3).unwrap())
            .is_ok());
    }

    #[test]
    fn lemma_1_holds_for_more_disks_too() {
        // Giving the classical methods even more disks than the
        // near-optimal technique needs does not save them.
        for d in [3usize, 4, 5] {
            let g = DiskAssignmentGraph::new(d);
            for n in [4usize, 6, 8] {
                assert!(
                    g.verify(&DiskModulo::new(n).unwrap()).is_err(),
                    "DM d={d} n={n}"
                );
                assert!(g.verify(&FxXor::new(n).unwrap()).is_err(), "FX d={d} n={n}");
            }
        }
    }

    #[test]
    fn near_optimal_verifies_up_to_d12() {
        for d in 1..=12 {
            let g = DiskAssignmentGraph::new(d);
            let m = NearOptimal::with_optimal_disks(d).unwrap();
            assert!(g.verify(&m).is_ok(), "d = {d}");
        }
    }

    #[test]
    fn violation_counts_rank_the_baselines() {
        // Hilbert is the best classical method: it must have fewer
        // violations than FX (which degenerates to parity).
        let d = 6;
        let n = 8;
        let g = DiskAssignmentGraph::new(d);
        let (fx_d, fx_i) = g.count_violations(&FxXor::new(n).unwrap());
        let (hi_d, hi_i) = g.count_violations(&HilbertDecluster::new(d, n).unwrap());
        let (no_d, no_i) = g.count_violations(&NearOptimal::with_optimal_disks(d).unwrap());
        assert_eq!((no_d, no_i), (0, 0));
        assert!(hi_d + hi_i < fx_d + fx_i);
        assert!(hi_d + hi_i > 0);
    }

    #[test]
    fn violation_reports_are_accurate() {
        let g = DiskAssignmentGraph::new(3);
        let v = g.verify(&FxXor::new(2).unwrap()).unwrap_err();
        // The reported pair really collides and really is a neighborhood.
        let fx = FxXor::new(2).unwrap();
        assert_eq!(
            fx.disk_of_bucket(v.bucket_a, 3),
            fx.disk_of_bucket(v.bucket_b, 3)
        );
        let bits = (v.bucket_a ^ v.bucket_b).count_ones();
        match v.kind {
            ViolationKind::Direct => assert_eq!(bits, 1),
            ViolationKind::Indirect => assert_eq!(bits, 2),
        }
    }

    #[test]
    fn staircase_is_optimal_for_small_dimensions() {
        // "For lower dimensions, we have verified by enumerating all
        // possible color assignments, that there is no method which uses
        // fewer colors than our staircase function."
        for d in [2usize, 3, 4] {
            let g = DiskAssignmentGraph::new(d);
            let required = colors_required(d) as usize;
            assert!(g.colorable_with(required), "d={d} required={required}");
            assert!(
                !g.colorable_with(required - 1),
                "d={d}: {} colors should not suffice",
                required - 1
            );
        }
    }

    #[test]
    fn d2_graph_is_complete() {
        // In 2-d all four quadrants are mutual neighbors (K4): 3 colors
        // cannot work, 4 can.
        let g = DiskAssignmentGraph::new(2);
        assert_eq!(g.edge_count(), 6);
        assert!(!g.colorable_with(3));
        assert!(g.colorable_with(4));
    }
}
