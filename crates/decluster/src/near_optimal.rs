//! The paper's near-optimal declustering technique (Section 4).
//!
//! Declustering the 2^d quadrants is transformed into coloring the **disk
//! assignment graph** `G_d`, whose vertices are bucket numbers and whose
//! edges connect direct (1-bit) and indirect (2-bit) neighbors. The vertex
//! coloring function (Definition 6)
//!
//! ```text
//! col(c) = XOR over every set bit position i of c of the value (i + 1)
//! ```
//!
//! assigns different colors to any two connected vertices (Lemmas 3 and 4,
//! both consequences of the distributivity `col(b) XOR col(c) =
//! col(b XOR c)` of Lemma 2) and uses exactly `nextpow2(d+1)` colors
//! (Lemma 6) — a staircase between the lower bound `d+1` and the upper
//! bound `2d`, optimal up to rounding.
//!
//! Positions are incremented before XOR-ing because otherwise dimension 0
//! would not contribute to the color at all (footnote 3 of the paper).

use serde::{Deserialize, Serialize};

use parsim_geometry::quadrant::BucketId;

use crate::methods::BucketDecluster;
use crate::DeclusterError;

/// The vertex coloring function `col` of Definition 6.
///
/// Runs in `O(d)`; the color of bucket `c` is the XOR of `(i+1)` over all
/// set bit positions `i < dim`.
///
/// # Example (the paper's worked example, Section 4.2)
///
/// ```
/// use parsim_decluster::near_optimal::col;
/// // Vertex 5 = 0b101 in a 3-d space: bits 0 and 2 are set, so the color
/// // is (0+1) XOR (2+1) = 1 XOR 3 = 2.
/// assert_eq!(col(5, 3), 2);
/// ```
#[inline]
pub fn col(c: BucketId, dim: usize) -> u32 {
    debug_assert!(dim <= 63, "bucket bitstrings are limited to 63 bits");
    debug_assert!(c < (1u64 << dim), "bucket out of range for dimension");
    let mut color = 0u32;
    let mut bits = c;
    while bits != 0 {
        let i = bits.trailing_zeros();
        color ^= i + 1;
        bits &= bits - 1;
    }
    color
}

/// Number of colors (disks) the coloring function requires for a
/// d-dimensional space: `⌈d+1⌉₂`, the next power of two at or above `d+1`
/// (Lemma 6).
pub fn colors_required(dim: usize) -> u32 {
    (dim as u32 + 1).next_power_of_two()
}

/// The linear lower bound of the staircase: each vertex has `d` direct
/// neighbors, all of which must differ from it pairwise, hence `d+1`.
pub fn color_lower_bound(dim: usize) -> u32 {
    dim as u32 + 1
}

/// The linear upper bound of the staircase: a power of two always lies
/// between `d` and `2d`, hence `⌈d+1⌉₂ ≤ 2d` for `d ≥ 1` (Lemma 6).
pub fn color_upper_bound(dim: usize) -> u32 {
    2 * dim.max(1) as u32
}

/// Builds the complement-folding table that adapts the coloring to an
/// arbitrary number of disks (Section 4.3, first extension).
///
/// Starting from `c_total = nextpow2(d+1)` colors, colors in the upper half
/// are repeatedly mapped to their binary complement (complementary colors
/// have maximal Hamming distance, so most directly neighboring buckets stay
/// on different disks) until at most `2n` colors remain; a final partial
/// fold maps the highest `C_k − n` colors to their complements, leaving
/// exactly `n` distinct disks `0..n`.
pub fn fold_table(c_total: u32, n: usize) -> Vec<u32> {
    assert!(
        c_total.is_power_of_two(),
        "color count must be a power of two"
    );
    assert!(n >= 1, "need at least one disk");
    assert!(n as u32 <= c_total, "cannot expand colors by folding");
    let mut table: Vec<u32> = (0..c_total).collect();
    let mut width = c_total;
    // Full folds: map the upper half onto the complement of the lower half.
    while width / 2 >= n as u32 {
        let half = width / 2;
        for t in table.iter_mut() {
            if *t >= half {
                *t = width - 1 - *t;
            }
        }
        width = half;
        if width == 1 {
            break;
        }
    }
    // Partial fold down to exactly n colors.
    if width > n as u32 {
        for t in table.iter_mut() {
            if *t >= n as u32 {
                *t = width - 1 - *t;
            }
        }
    }
    table
}

/// The paper's near-optimal declustering method.
///
/// With `disks == colors_required(dim)` the assignment is provably
/// near-optimal: all direct and indirect neighbors land on different disks
/// (Lemma 5). With fewer disks the complement-folding extension is applied;
/// direct neighbors are still separated in most cases, but indirect
/// collisions become unavoidable (no near-optimal declustering with fewer
/// colors exists — the staircase is a lower bound).
///
/// ```
/// use parsim_decluster::{BucketDecluster, NearOptimal};
///
/// let m = NearOptimal::with_optimal_disks(8).unwrap();
/// assert_eq!(m.disks(), 16); // nextpow2(8 + 1)
/// // Direct neighbors (1-bit difference) always land on different disks.
/// let bucket = 0b1011_0010;
/// for i in 0..8 {
///     assert_ne!(
///         m.disk_of_bucket(bucket, 8),
///         m.disk_of_bucket(bucket ^ (1 << i), 8),
///     );
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NearOptimal {
    dim: usize,
    disks: usize,
    /// Lookup from raw color to physical disk. Identity when
    /// `disks == colors_required(dim)`.
    table: Vec<u32>,
}

impl NearOptimal {
    /// Creates the near-optimal declusterer for `dim` dimensions on the
    /// optimal number of disks, `colors_required(dim)`.
    pub fn with_optimal_disks(dim: usize) -> Result<Self, DeclusterError> {
        Self::new(dim, colors_required(dim) as usize)
    }

    /// Creates the near-optimal declusterer for an arbitrary number of
    /// disks `1 ≤ disks ≤ colors_required(dim)` via complement folding.
    pub fn new(dim: usize, disks: usize) -> Result<Self, DeclusterError> {
        if dim == 0 || dim > 63 {
            return Err(DeclusterError::BadDimension { dim });
        }
        if disks == 0 {
            return Err(DeclusterError::ZeroDisks);
        }
        let c_total = colors_required(dim);
        if disks as u32 > c_total {
            return Err(DeclusterError::TooManyDisks {
                requested: disks,
                max: c_total as usize,
            });
        }
        Ok(NearOptimal {
            dim,
            disks,
            table: fold_table(c_total, disks),
        })
    }

    /// The dimensionality this instance declusters.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// True if this instance runs on the provably near-optimal disk count.
    pub fn is_exact(&self) -> bool {
        self.disks as u32 == colors_required(self.dim)
    }

    /// The raw (unfolded) color of a bucket.
    pub fn color(&self, bucket: BucketId) -> u32 {
        col(bucket, self.dim)
    }
}

impl BucketDecluster for NearOptimal {
    fn name(&self) -> &'static str {
        "near-optimal"
    }

    fn disks(&self) -> usize {
        self.disks
    }

    fn disk_of_bucket(&self, bucket: BucketId, dim: usize) -> usize {
        debug_assert_eq!(dim, self.dim, "dimension mismatch");
        self.table[col(bucket, self.dim) as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_geometry::quadrant::{direct_neighbors, indirect_neighbors};

    #[test]
    fn paper_worked_example() {
        // Section 4.2: vertex 5 in G_3 has color 2.
        assert_eq!(col(5, 3), 2);
        // The origin always has color 0 (proof of Lemma 6).
        for d in 1..=20 {
            assert_eq!(col(0, d), 0);
        }
    }

    #[test]
    fn distributivity_lemma_2() {
        // col(b) XOR col(c) == col(b XOR c), exhaustively for d = 6.
        let d = 6;
        for b in 0..(1u64 << d) {
            for c in 0..(1u64 << d) {
                assert_eq!(col(b, d) ^ col(c, d), col(b ^ c, d));
            }
        }
    }

    #[test]
    fn direct_neighbors_differ_lemma_3() {
        for d in 1..=12 {
            for b in 0..(1u64 << d) {
                for c in direct_neighbors(b, d) {
                    assert_ne!(col(b, d), col(c, d), "d={d} b={b} c={c}");
                }
            }
        }
    }

    #[test]
    fn indirect_neighbors_differ_lemma_4() {
        for d in 2..=12 {
            for b in 0..(1u64 << d) {
                for c in indirect_neighbors(b, d) {
                    assert_ne!(col(b, d), col(c, d), "d={d} b={b} c={c}");
                }
            }
        }
    }

    #[test]
    fn staircase_lemma_6() {
        // colors_required is the next power of two of d+1 …
        let expected = [
            (1, 2),
            (2, 4),
            (3, 4),
            (4, 8),
            (7, 8),
            (8, 16),
            (15, 16),
            (16, 32),
            (31, 32),
            (32, 64),
        ];
        for (d, c) in expected {
            assert_eq!(colors_required(d), c, "d = {d}");
        }
        // … bounded by d+1 below and 2d above.
        for d in 1..=63 {
            assert!(colors_required(d) >= color_lower_bound(d));
            assert!(colors_required(d) <= color_upper_bound(d));
        }
    }

    #[test]
    fn exactly_the_staircase_colors_are_used() {
        // Lemma 6 also proves every color 0..nextpow2(d+1) is generated.
        for d in 1..=16 {
            let mut seen = vec![false; colors_required(d) as usize];
            for b in 0..(1u64 << d) {
                seen[col(b, d) as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "d = {d}: not all colors used");
        }
    }

    #[test]
    fn constructive_color_witness() {
        // The constructive half of Lemma 6: for any color c, the bucket
        // with bit j-1 set for every set bit j of c has color c.
        for d in [5usize, 9, 17] {
            for c in 0..colors_required(d) {
                let mut bucket: u64 = 0;
                for j in 0..32 {
                    if c & (1 << j) != 0 {
                        // Bit position (2^j) - 1.
                        bucket |= 1u64 << ((1u64 << j) - 1);
                    }
                }
                if bucket < (1u64 << d) {
                    assert_eq!(col(bucket, d), c, "d={d} c={c}");
                }
            }
        }
    }

    #[test]
    fn fold_table_identity_when_n_equals_c() {
        let t = fold_table(16, 16);
        assert_eq!(t, (0..16).collect::<Vec<u32>>());
    }

    #[test]
    fn fold_table_halving_matches_paper_example() {
        // Section 4.3: for an 8-d space (C = 16), colors 8..15 map to 7..0.
        let t = fold_table(16, 8);
        for c in 0..8u32 {
            assert_eq!(t[c as usize], c);
        }
        for c in 8..16u32 {
            assert_eq!(t[c as usize], 15 - c);
        }
    }

    #[test]
    fn fold_table_arbitrary_n() {
        for c_total in [4u32, 8, 16, 32] {
            for n in 1..=c_total as usize {
                let t = fold_table(c_total, n);
                // Exactly the disks 0..n are used.
                let mut seen = vec![false; n];
                for &d in &t {
                    assert!((d as usize) < n, "C={c_total} n={n}: disk {d} out of range");
                    seen[d as usize] = true;
                }
                assert!(seen.iter().all(|&s| s), "C={c_total} n={n}: unused disk");
            }
        }
    }

    #[test]
    fn near_optimal_constructor_validation() {
        assert!(matches!(
            NearOptimal::new(0, 4),
            Err(DeclusterError::BadDimension { dim: 0 })
        ));
        assert!(matches!(
            NearOptimal::new(3, 0),
            Err(DeclusterError::ZeroDisks)
        ));
        assert!(matches!(
            NearOptimal::new(3, 5),
            Err(DeclusterError::TooManyDisks {
                requested: 5,
                max: 4
            })
        ));
        let m = NearOptimal::with_optimal_disks(8).unwrap();
        assert_eq!(m.disks(), 16);
        assert!(m.is_exact());
        assert!(!NearOptimal::new(8, 10).unwrap().is_exact());
    }

    #[test]
    fn folding_preserves_most_direct_separations() {
        // The paper's claim for the halving fold: "most directly
        // neighboring buckets are still assigned to different disks".
        let d = 8;
        let m = NearOptimal::new(d, 8).unwrap(); // folded from C = 16
        let mut edges = 0u64;
        let mut collisions = 0u64;
        for b in 0..(1u64 << d) {
            for c in direct_neighbors(b, d) {
                if b < c {
                    edges += 1;
                    if m.disk_of_bucket(b, d) == m.disk_of_bucket(c, d) {
                        collisions += 1;
                    }
                }
            }
        }
        assert!(
            (collisions as f64) < 0.2 * edges as f64,
            "{collisions} of {edges} direct edges collide"
        );
    }
}
