//! Quantile-based split adaptation for skewed data (Section 4.3).
//!
//! With mid-point splits, clustered data can put most points into few
//! quadrants and hence onto few disks. The paper's first counter-measure:
//! split each dimension at its **0.5-quantile** instead of at 0.5, and
//! track the distribution online so the split can be re-estimated when the
//! ratio of points below/above drifts past a threshold.

use serde::{Deserialize, Serialize};

use parsim_geometry::{GeometryError, Point, QuadrantSplitter};

/// Computes the per-dimension 0.5-quantiles (medians) of a data set and
/// returns the corresponding [`QuadrantSplitter`].
///
/// # Panics
///
/// Panics if `points` is empty or contains mixed dimensionalities.
pub fn median_splits(points: &[Point]) -> Result<QuadrantSplitter, GeometryError> {
    median_splits_of(points.iter())
}

/// [`median_splits`] over any re-iterable view of the points — the
/// engine's online reorganize computes fresh splits directly from its
/// `(point, item)` pairs without materializing a second point vector.
///
/// # Panics
///
/// Panics if `points` is empty or contains mixed dimensionalities.
pub fn median_splits_of<'a, I>(points: I) -> Result<QuadrantSplitter, GeometryError>
where
    I: Iterator<Item = &'a Point> + Clone,
{
    let dim = points
        .clone()
        .next()
        .expect("cannot take quantiles of an empty set")
        .dim();
    let mut splits = Vec::with_capacity(dim);
    let mut column: Vec<f64> = Vec::new();
    for axis in 0..dim {
        column.clear();
        column.extend(points.clone().map(|p| {
            assert_eq!(p.dim(), dim, "mixed dimensionalities");
            p[axis]
        }));
        let mid = column.len() / 2;
        let (below, median, above) =
            column.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("finite"));
        let mut split = *median;
        // Sparse/discrete data degenerate: when the median ties the
        // minimum (e.g. text descriptors where most coordinates are 0),
        // `bucket_of`'s `>=` comparison would put *every* point in the
        // upper half and the dimension would stop contributing. Nudge the
        // split to the smallest value strictly above the median so the tie
        // class lands below it.
        let is_min = below.iter().all(|&v| v >= split);
        if is_min {
            if let Some(next) = above
                .iter()
                .copied()
                .filter(|&v| v > split)
                .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.min(v))))
            {
                split = split + (next - split) * 0.5;
            }
        }
        splits.push(split);
    }
    QuadrantSplitter::with_splits(splits)
}

/// Online tracker of the per-dimension balance around the current splits
/// (the paper's dynamic adaptation: "we dynamically adapt the 0.5-quantile
/// by recording the distribution according to the previous 0.5-quantile,
/// i.e. counting the number of data points below and above the split
/// value").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveQuantile {
    splits: Vec<f64>,
    below: Vec<u64>,
    above: Vec<u64>,
    /// Reorganization threshold on `max(below,above) / min(below,above)`.
    threshold: f64,
}

impl AdaptiveQuantile {
    /// Creates a tracker around the given initial splitter with the given
    /// imbalance threshold (e.g. 2.0 = reorganize when one side holds twice
    /// as many points as the other).
    ///
    /// # Panics
    ///
    /// Panics if `threshold <= 1.0`.
    pub fn new(splitter: &QuadrantSplitter, threshold: f64) -> Self {
        assert!(threshold > 1.0, "threshold must exceed 1.0");
        let dim = splitter.dim();
        AdaptiveQuantile {
            splits: (0..dim).map(|i| splitter.split(i)).collect(),
            below: vec![0; dim],
            above: vec![0; dim],
            threshold,
        }
    }

    /// Records one inserted point.
    pub fn observe(&mut self, p: &Point) {
        debug_assert_eq!(p.dim(), self.splits.len());
        for (axis, &c) in p.iter().enumerate() {
            if c < self.splits[axis] {
                self.below[axis] += 1;
            } else {
                self.above[axis] += 1;
            }
        }
    }

    /// The per-axis imbalance ratio `max(below,above) / min(below,above)`
    /// (∞ when one side is empty, 1.0 before any observation).
    pub fn imbalance(&self, axis: usize) -> f64 {
        let (b, a) = (self.below[axis], self.above[axis]);
        if b == 0 && a == 0 {
            return 1.0;
        }
        let max = b.max(a) as f64;
        let min = b.min(a) as f64;
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// True if any axis has drifted past the threshold, i.e. the splits
    /// should be recomputed from the current data (reorganization).
    pub fn needs_reorganization(&self) -> bool {
        (0..self.splits.len()).any(|axis| self.imbalance(axis) > self.threshold)
    }

    /// Installs new splits (after a reorganization) and resets the
    /// counters.
    pub fn reset(&mut self, splitter: &QuadrantSplitter) {
        assert_eq!(splitter.dim(), self.splits.len(), "dimension mismatch");
        for (axis, s) in self.splits.iter_mut().enumerate() {
            *s = splitter.split(axis);
        }
        self.below.fill(0);
        self.above.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_datagen::{ClusteredGenerator, DataGenerator, UniformGenerator};

    #[test]
    fn median_splits_balance_every_axis() {
        let pts = ClusteredGenerator::new(6, 3, 0.05).generate(5001, 13);
        let splitter = median_splits(&pts).unwrap();
        for axis in 0..6 {
            let below = pts
                .iter()
                .filter(|p| p[axis] < splitter.split(axis))
                .count();
            let frac = below as f64 / pts.len() as f64;
            assert!((frac - 0.5).abs() < 0.02, "axis {axis}: {frac}");
        }
    }

    #[test]
    fn median_of_uniform_is_near_half() {
        let pts = UniformGenerator::new(4).generate(20_000, 2);
        let splitter = median_splits(&pts).unwrap();
        for axis in 0..4 {
            assert!((splitter.split(axis) - 0.5).abs() < 0.02);
        }
    }

    #[test]
    fn median_splits_spread_clustered_data_over_buckets() {
        // With mid-point splits, single-quadrant data occupies one bucket;
        // with median splits it spreads over many.
        let gen = ClusteredGenerator::new(5, 4, 0.03).in_single_quadrant();
        let pts = gen.generate(4000, 3);
        let mid = QuadrantSplitter::midpoint(5).unwrap();
        let med = median_splits(&pts).unwrap();
        let occupied = |s: &QuadrantSplitter| {
            let mut seen = std::collections::HashSet::new();
            for p in &pts {
                seen.insert(s.bucket_of(p));
            }
            seen.len()
        };
        let mid_buckets = occupied(&mid);
        let med_buckets = occupied(&med);
        assert!(
            med_buckets >= 4 * mid_buckets.max(1),
            "midpoint {mid_buckets} vs median {med_buckets}"
        );
    }

    #[test]
    fn sparse_data_keeps_dimensions_effective() {
        // Text-descriptor-like data: most coordinates are exactly 0. The
        // naive median (0.0) combined with `bucket_of`'s `>=` would push
        // every point into the upper half of every axis, collapsing the
        // partition to one bucket.
        use parsim_datagen::TextDescriptorGenerator;
        let pts = TextDescriptorGenerator::new(10).generate(5000, 3);
        let splitter = median_splits(&pts).unwrap();
        let mut buckets = std::collections::HashSet::new();
        for p in &pts {
            buckets.insert(splitter.bucket_of(p));
        }
        assert!(
            buckets.len() > 16,
            "only {} buckets occupied",
            buckets.len()
        );
        // Each axis separates a non-trivial fraction of the data.
        for axis in 0..10 {
            let below = pts
                .iter()
                .filter(|p| p[axis] < splitter.split(axis))
                .count();
            let frac = below as f64 / pts.len() as f64;
            assert!(
                (0.05..=0.95).contains(&frac),
                "axis {axis} separates only {frac}"
            );
        }
    }

    #[test]
    fn adaptive_tracker_detects_drift() {
        let splitter = QuadrantSplitter::midpoint(2).unwrap();
        let mut tracker = AdaptiveQuantile::new(&splitter, 2.0);
        assert!(!tracker.needs_reorganization());
        // Feed points that are all in the lower-left region.
        for i in 0..100 {
            let v = 0.1 + (i as f64 % 10.0) / 50.0;
            tracker.observe(&Point::new(vec![v, v]).unwrap());
        }
        assert!(tracker.needs_reorganization());
        assert_eq!(tracker.imbalance(0), f64::INFINITY);
        // Reorganize with proper medians; the tracker resets.
        let new_splits = QuadrantSplitter::with_splits(vec![0.2, 0.2]).unwrap();
        tracker.reset(&new_splits);
        assert!(!tracker.needs_reorganization());
        assert_eq!(tracker.imbalance(0), 1.0);
    }

    #[test]
    fn balanced_stream_never_triggers() {
        let splitter = QuadrantSplitter::midpoint(3).unwrap();
        let mut tracker = AdaptiveQuantile::new(&splitter, 2.0);
        for p in UniformGenerator::new(3).generate(5000, 4) {
            tracker.observe(&p);
        }
        assert!(!tracker.needs_reorganization());
    }
}
