//! Replica placement on top of the near-optimal declustering.
//!
//! For fault tolerance every bucket gets a **mirror copy** on a second
//! disk. The placement goal extends Definition 4: the replica disk should
//! differ from the bucket's own primary disk *and* from the primary disks
//! of all its direct and indirect neighbors, so that after a single disk
//! failure the failed-over reads do not pile onto disks that the same
//! query is already using.
//!
//! A perfect such placement is impossible at the optimal disk count
//! `C = nextpow2(d+1)`: by Lemma 2 the colors of bucket `c`'s neighbors
//! are `col(c) XOR δ` for the fixed delta set
//! `Δ = {i+1} ∪ {(i+1) XOR (j+1)}`, and `Δ` covers **every** non-zero
//! value below `C` (e.g. for `d = 5`: `{1,…,6} ∪ {1 XOR 2 = 3, 1 XOR 4 =
//! 5, 2 XOR 4 = 6, 3 XOR 4 = 7, …}` ⊇ `{1,…,7}`) — every candidate disk
//! already holds some neighbor's primary. [`ReplicaPlacement`] therefore
//! places greedily: per color it picks the disk with the fewest neighbor
//! primaries (deterministic tie-break), which is provably conflict-free as
//! soon as spare disks beyond `C` exist, and minimizes conflicts otherwise.
//! Because the neighbor delta set is independent of the bucket, the whole
//! placement is a `C`-entry color table — no `O(2^d)` state.

use std::sync::Arc;

use parsim_geometry::quadrant::{all_neighbors, BucketId};
use parsim_geometry::{Point, QuadrantSplitter};

use crate::methods::Declusterer;
use crate::near_optimal::{col, colors_required, fold_table};
use crate::DeclusterError;

/// Routes points to the disk holding their **mirror** copy. Implemented by
/// replica-aware declusterers; the parallel engine uses it to build and
/// query per-disk mirror trees.
pub trait ReplicaRouting: Send + Sync {
    /// The disk storing the replica of the `seq`-th inserted point `p`.
    /// Must differ from the primary disk returned by the paired
    /// [`Declusterer::assign`].
    fn replica_disk(&self, seq: u64, p: &Point) -> usize;
}

/// A replica-placement violation found by [`ReplicaPlacement::verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaViolation {
    /// The bucket whose replica is misplaced.
    pub bucket: BucketId,
    /// The neighbor whose primary disk collides with the replica, or
    /// `None` if the replica landed on the bucket's own primary disk.
    pub neighbor: Option<BucketId>,
    /// The colliding disk.
    pub disk: usize,
}

/// Bucket-to-disk placement of primaries and replicas.
///
/// Primaries use the paper's near-optimal coloring folded onto
/// `min(disks, colors_required(dim))` disks; replicas are placed by the
/// greedy minimum-conflict rule described in the module docs. Disks beyond
/// `colors_required(dim)` never receive primaries and act as dedicated
/// mirror spares.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaPlacement {
    dim: usize,
    disks: usize,
    /// Raw color → primary disk (complement folding).
    primary_table: Vec<u32>,
    /// Raw color → replica disk (greedy minimum-conflict).
    replica_table: Vec<u32>,
    /// Raw color → number of neighbor deltas whose primary shares the
    /// chosen replica disk.
    conflicts: Vec<u32>,
}

impl ReplicaPlacement {
    /// Computes the placement for a `dim`-dimensional space over `disks`
    /// disks. Replication needs at least two disks; disk counts above
    /// `colors_required(dim)` are allowed (the surplus hosts replicas
    /// only).
    pub fn new(dim: usize, disks: usize) -> Result<Self, DeclusterError> {
        if dim == 0 || dim > 63 {
            return Err(DeclusterError::BadDimension { dim });
        }
        if disks == 0 {
            return Err(DeclusterError::ZeroDisks);
        }
        if disks < 2 {
            return Err(DeclusterError::TooFewDisks {
                requested: disks,
                min: 2,
            });
        }
        let colors = colors_required(dim);
        let primary_disks = disks.min(colors as usize);
        let primary_table = fold_table(colors, primary_disks);

        // The color deltas of all direct and indirect neighbors — the same
        // set for every bucket, by the distributivity of `col` (Lemma 2).
        let mut deltas: Vec<u32> = Vec::new();
        for i in 0..dim as u32 {
            deltas.push(i + 1);
            for j in (i + 1)..dim as u32 {
                deltas.push((i + 1) ^ (j + 1));
            }
        }

        let mut replica_table = Vec::with_capacity(colors as usize);
        let mut conflicts = Vec::with_capacity(colors as usize);
        for color in 0..colors {
            let primary = primary_table[color as usize] as usize;
            // How many neighbor primaries each candidate disk would share.
            let mut load = vec![0u32; disks];
            for &d in &deltas {
                load[primary_table[(color ^ d) as usize] as usize] += 1;
            }
            let best = load
                .iter()
                .enumerate()
                .filter(|&(disk, _)| disk != primary)
                .map(|(_, &l)| l)
                .min()
                .expect("at least one non-primary disk exists");
            let candidates: Vec<usize> = (0..disks)
                .filter(|&disk| disk != primary && load[disk] == best)
                .collect();
            // Rotate through tied candidates by color so mirror load
            // spreads over all equally good disks (deterministic).
            let chosen = candidates[color as usize % candidates.len()];
            replica_table.push(chosen as u32);
            conflicts.push(best);
        }
        Ok(ReplicaPlacement {
            dim,
            disks,
            primary_table,
            replica_table,
            conflicts,
        })
    }

    /// The dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of disks (primaries + mirror spares).
    pub fn disks(&self) -> usize {
        self.disks
    }

    /// The primary disk of a raw color.
    pub fn primary_of_color(&self, color: u32) -> usize {
        self.primary_table[color as usize] as usize
    }

    /// The replica disk of a raw color.
    pub fn replica_of_color(&self, color: u32) -> usize {
        self.replica_table[color as usize] as usize
    }

    /// The primary disk of a bucket.
    pub fn primary_of_bucket(&self, bucket: BucketId) -> usize {
        self.primary_of_color(col(bucket, self.dim))
    }

    /// The replica disk of a bucket — always distinct from
    /// [`ReplicaPlacement::primary_of_bucket`].
    pub fn replica_of_bucket(&self, bucket: BucketId) -> usize {
        self.replica_of_color(col(bucket, self.dim))
    }

    /// Total neighbor conflicts over all colors: for each color, the
    /// number of neighbor deltas whose primary disk equals the chosen
    /// replica disk. Zero iff the placement is perfect.
    pub fn count_conflicts(&self) -> u64 {
        self.conflicts.iter().map(|&c| c as u64).sum()
    }

    /// True if no replica shares a disk with any neighbor's primary —
    /// guaranteed whenever `disks > colors_required(dim)`.
    pub fn is_conflict_free(&self) -> bool {
        self.conflicts.iter().all(|&c| c == 0)
    }

    /// Exhaustively checks the placement on the disk assignment graph,
    /// mirroring [`crate::DiskAssignmentGraph::verify`]: every bucket's
    /// replica must differ from its own primary and from every direct and
    /// indirect neighbor's primary. Returns the first violation.
    ///
    /// # Panics
    ///
    /// Panics if `dim > 24` (the check enumerates all `2^d` buckets).
    pub fn verify(&self) -> Result<(), ReplicaViolation> {
        assert!(
            self.dim <= 24,
            "exhaustive verification is limited to dim ≤ 24"
        );
        for b in 0..(1u64 << self.dim) {
            let replica = self.replica_of_bucket(b);
            if replica == self.primary_of_bucket(b) {
                return Err(ReplicaViolation {
                    bucket: b,
                    neighbor: None,
                    disk: replica,
                });
            }
            for nb in all_neighbors(b, self.dim) {
                if self.primary_of_bucket(nb) == replica {
                    return Err(ReplicaViolation {
                        bucket: b,
                        neighbor: Some(nb),
                        disk: replica,
                    });
                }
            }
        }
        Ok(())
    }
}

/// A point-level declusterer with replica routing: primaries follow the
/// near-optimal coloring, mirrors follow the greedy [`ReplicaPlacement`].
///
/// Implements both [`Declusterer`] (primary assignment, pluggable into the
/// parallel engine) and [`ReplicaRouting`] (mirror assignment).
#[derive(Clone)]
pub struct ReplicaDeclusterer {
    placement: ReplicaPlacement,
    splitter: Arc<QuadrantSplitter>,
}

impl ReplicaDeclusterer {
    /// Combines a placement over `disks` disks with a quadrant splitter.
    pub fn new(
        dim: usize,
        disks: usize,
        splitter: QuadrantSplitter,
    ) -> Result<Self, DeclusterError> {
        if splitter.dim() != dim {
            return Err(DeclusterError::BadDimension { dim });
        }
        Ok(ReplicaDeclusterer {
            placement: ReplicaPlacement::new(dim, disks)?,
            splitter: Arc::new(splitter),
        })
    }

    /// The underlying placement tables.
    pub fn placement(&self) -> &ReplicaPlacement {
        &self.placement
    }

    /// The splitter in use.
    pub fn splitter(&self) -> &QuadrantSplitter {
        &self.splitter
    }
}

impl Declusterer for ReplicaDeclusterer {
    fn name(&self) -> String {
        "near-optimal+replica".to_owned()
    }

    fn disks(&self) -> usize {
        self.placement.disks()
    }

    fn assign(&self, _seq: u64, p: &Point) -> usize {
        self.placement.primary_of_bucket(self.splitter.bucket_of(p))
    }
}

impl ReplicaRouting for ReplicaDeclusterer {
    fn replica_disk(&self, _seq: u64, p: &Point) -> usize {
        self.placement.replica_of_bucket(self.splitter.bucket_of(p))
    }
}

/// Fallback replica routing for declusterers without a placement of their
/// own: the mirror goes to the disk after the primary, `(primary + 1) mod
/// n`. Always distinct from the primary for `n ≥ 2`, but makes no attempt
/// to avoid neighbor primaries.
#[derive(Clone)]
pub struct ChainedReplica {
    inner: Arc<dyn Declusterer>,
}

impl ChainedReplica {
    /// Wraps any declusterer with chained mirror routing.
    ///
    /// # Panics
    ///
    /// Panics if the declusterer has fewer than two disks.
    pub fn new(inner: Arc<dyn Declusterer>) -> Self {
        assert!(
            inner.disks() >= 2,
            "chained replicas need at least two disks"
        );
        ChainedReplica { inner }
    }
}

impl ReplicaRouting for ChainedReplica {
    fn replica_disk(&self, seq: u64, p: &Point) -> usize {
        (self.inner.assign(seq, p) + 1) % self.inner.disks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive bucket-level conflict count for an arbitrary replica rule.
    fn bucket_conflicts(
        dim: usize,
        primary: impl Fn(BucketId) -> usize,
        replica: impl Fn(BucketId) -> usize,
    ) -> u64 {
        let mut conflicts = 0;
        for b in 0..(1u64 << dim) {
            let r = replica(b);
            for nb in all_neighbors(b, dim) {
                if primary(nb) == r {
                    conflicts += 1;
                }
            }
        }
        conflicts
    }

    #[test]
    fn replica_always_differs_from_primary() {
        for dim in 1..=10 {
            for disks in 2..=(colors_required(dim) as usize + 4) {
                let p = ReplicaPlacement::new(dim, disks).unwrap();
                for b in 0..(1u64 << dim) {
                    assert_ne!(
                        p.primary_of_bucket(b),
                        p.replica_of_bucket(b),
                        "dim={dim} disks={disks} bucket={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn spare_disks_make_the_placement_conflict_free() {
        // One disk beyond the color count suffices: the spare holds no
        // primaries, so replicas on it conflict with nothing.
        for dim in [3usize, 5, 8] {
            let c = colors_required(dim) as usize;
            let p = ReplicaPlacement::new(dim, c + 1).unwrap();
            assert!(p.is_conflict_free(), "dim={dim}");
            assert_eq!(p.count_conflicts(), 0);
            p.verify().unwrap();
        }
        // With several spares the mirror load is spread across them.
        let p = ReplicaPlacement::new(3, 8).unwrap();
        p.verify().unwrap();
        let targets: std::collections::BTreeSet<usize> = (0..colors_required(3))
            .map(|c| p.replica_of_color(c))
            .collect();
        assert!(targets.len() > 1, "all mirrors piled onto one spare");
    }

    #[test]
    fn optimal_disk_count_admits_no_perfect_placement() {
        // At n = C the neighbor color deltas cover every non-zero value
        // below C (see module docs), so some conflict is unavoidable; the
        // greedy placement must report it honestly.
        for dim in [3usize, 5, 8] {
            let c = colors_required(dim) as usize;
            let p = ReplicaPlacement::new(dim, c).unwrap();
            assert!(!p.is_conflict_free(), "dim={dim}");
            assert!(p.count_conflicts() > 0);
            let v = p.verify().unwrap_err();
            // The reported violation is a genuine neighbor conflict, never
            // a replica-equals-primary bug.
            assert!(v.neighbor.is_some());
            assert_eq!(p.primary_of_bucket(v.neighbor.unwrap()), v.disk);
            assert_eq!(p.replica_of_bucket(v.bucket), v.disk);
        }
    }

    #[test]
    fn greedy_beats_chained_placement() {
        // The minimum-conflict rule must never be worse than the naive
        // `(primary + 1) mod n` chain, bucket for bucket.
        for dim in [4usize, 5, 8] {
            for disks in [
                colors_required(dim) as usize,
                colors_required(dim) as usize + 2,
            ] {
                let p = ReplicaPlacement::new(dim, disks).unwrap();
                let greedy =
                    bucket_conflicts(dim, |b| p.primary_of_bucket(b), |b| p.replica_of_bucket(b));
                let chained = bucket_conflicts(
                    dim,
                    |b| p.primary_of_bucket(b),
                    |b| (p.primary_of_bucket(b) + 1) % disks,
                );
                assert!(
                    greedy <= chained,
                    "dim={dim} disks={disks}: greedy {greedy} vs chained {chained}"
                );
            }
        }
    }

    #[test]
    fn per_color_conflicts_match_exhaustive_count() {
        // The C-entry conflict table, weighted by buckets per color class,
        // must equal the exhaustive bucket-level count — evidence that the
        // color-table compression loses nothing.
        for dim in [4usize, 6] {
            let c = colors_required(dim) as usize;
            let p = ReplicaPlacement::new(dim, c).unwrap();
            let buckets_per_color = (1u64 << dim) / c as u64;
            let exhaustive =
                bucket_conflicts(dim, |b| p.primary_of_bucket(b), |b| p.replica_of_bucket(b));
            assert_eq!(
                p.count_conflicts() * buckets_per_color,
                exhaustive,
                "dim={dim}"
            );
        }
    }

    #[test]
    fn declusterer_and_routing_agree_with_the_placement() {
        let splitter = QuadrantSplitter::midpoint(3).unwrap();
        let rd = ReplicaDeclusterer::new(3, 8, splitter).unwrap();
        assert_eq!(rd.disks(), 8);
        assert_eq!(rd.name(), "near-optimal+replica");
        // Point (0.9, 0.1, 0.9) is bucket 0b101 = 5.
        let p = Point::new(vec![0.9, 0.1, 0.9]).unwrap();
        assert_eq!(rd.assign(0, &p), rd.placement().primary_of_bucket(5));
        assert_eq!(rd.replica_disk(0, &p), rd.placement().replica_of_bucket(5));
        assert_ne!(rd.assign(7, &p), rd.replica_disk(7, &p));
    }

    #[test]
    fn chained_replica_differs_from_primary() {
        let inner: Arc<dyn Declusterer> = Arc::new(crate::RoundRobin::new(4).unwrap());
        let chained = ChainedReplica::new(Arc::clone(&inner));
        let p = Point::origin(2);
        for seq in 0..16 {
            assert_ne!(inner.assign(seq, &p), chained.replica_disk(seq, &p));
        }
    }

    #[test]
    fn rejects_degenerate_configurations() {
        assert!(matches!(
            ReplicaPlacement::new(0, 4),
            Err(DeclusterError::BadDimension { dim: 0 })
        ));
        assert!(matches!(
            ReplicaPlacement::new(3, 0),
            Err(DeclusterError::ZeroDisks)
        ));
        assert!(matches!(
            ReplicaPlacement::new(3, 1),
            Err(DeclusterError::TooFewDisks {
                requested: 1,
                min: 2
            })
        ));
        let wrong_splitter = QuadrantSplitter::midpoint(4).unwrap();
        assert!(ReplicaDeclusterer::new(3, 4, wrong_splitter).is_err());
    }
}
