//! Declustering methods for parallel nearest-neighbor search.
//!
//! The core problem of parallel NN search is the **declustering problem**:
//! distribute the data over `n` disks such that the pages any query reads
//! are spread over as many disks as possible. This crate implements every
//! method the paper discusses:
//!
//! * [`RoundRobin`] — data item `v_j` goes to disk `j mod n` (the naive
//!   baseline of Section 3).
//! * [`DiskModulo`] — Du and Sobolewski \[DS 82\]:
//!   `DM(c) = (Σ c_l) mod n`.
//! * [`FxXor`] — Kim and Pramanik \[KP 88\]:
//!   `FX(c) = (XOR c_l) mod n`.
//! * [`HilbertDecluster`] — Faloutsos and Bhagwat \[FB 93\]:
//!   `HI(c) = hilbert(c) mod n`, the strongest classical baseline.
//! * [`NearOptimal`] — **the paper's contribution** (Section 4): the
//!   vertex-coloring function [`near_optimal::col`] guarantees that all
//!   buckets corresponding to directly or indirectly neighboring quadrants
//!   are assigned to different disks, using the optimal-up-to-rounding
//!   number of `nextpow2(d+1)` disks, with the complement-folding
//!   extension for arbitrary disk counts.
//!
//! The [`graph`] module contains the disk-assignment-graph machinery used
//! to *verify* near-optimality (Definition 4) and the exhaustive coloring
//! search used to confirm the staircase of Lemma 6 is optimal for small
//! dimensions. The [`quantile`] and [`recursive`] modules implement the
//! Section 4.3 extensions for skewed and correlated data.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod graph;
pub mod methods;
pub mod near_optimal;
pub mod quantile;
pub mod recursive;
pub mod replica;
pub mod striped;

pub use graph::{DiskAssignmentGraph, Violation, ViolationKind};
pub use methods::{
    BucketBased, BucketDecluster, Declusterer, DiskModulo, FxXor, HilbertDecluster, RoundRobin,
};
pub use near_optimal::NearOptimal;
pub use quantile::{median_splits, median_splits_of, AdaptiveQuantile};
pub use recursive::{RecursiveDeclusterer, RecursiveStats};
pub use replica::{ChainedReplica, ReplicaDeclusterer, ReplicaPlacement, ReplicaRouting};
pub use striped::StripedNearOptimal;

/// Errors produced by declustering constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeclusterError {
    /// A method was constructed with zero disks.
    ZeroDisks,
    /// The dimensionality is outside the supported range.
    BadDimension {
        /// The offending dimensionality.
        dim: usize,
    },
    /// More disks were requested than the method can use for this
    /// dimensionality.
    TooManyDisks {
        /// The requested disk count.
        requested: usize,
        /// The maximum useful disk count.
        max: usize,
    },
    /// Fewer disks were supplied than the method needs (e.g. replica
    /// placement needs a second disk to mirror onto).
    TooFewDisks {
        /// The requested disk count.
        requested: usize,
        /// The minimum workable disk count.
        min: usize,
    },
}

impl std::fmt::Display for DeclusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeclusterError::ZeroDisks => write!(f, "need at least one disk"),
            DeclusterError::BadDimension { dim } => write!(f, "unsupported dimensionality {dim}"),
            DeclusterError::TooManyDisks { requested, max } => {
                write!(
                    f,
                    "{requested} disks requested but at most {max} are usable"
                )
            }
            DeclusterError::TooFewDisks { requested, min } => {
                write!(
                    f,
                    "{requested} disks requested but at least {min} are needed"
                )
            }
        }
    }
}

impl std::error::Error for DeclusterError {}
