//! The declustering method traits and the classical baselines.

use std::sync::Arc;

use parsim_geometry::quadrant::BucketId;
use parsim_geometry::{Point, QuadrantSplitter};
use parsim_hilbert::HilbertCurve;

use crate::DeclusterError;

/// A **bucket-level** declustering method: a pure mapping from quadrant
/// bucket numbers to disk numbers (the paper's "declustering algorithm
/// DA"). Bucket-level methods can be analyzed on the disk assignment graph
/// (near-optimality verification) and lifted to point level with
/// [`BucketBased`].
pub trait BucketDecluster: Send + Sync {
    /// Short name for experiment logs ("disk-modulo", "hilbert", …).
    fn name(&self) -> &'static str;

    /// Number of disks the method distributes over.
    fn disks(&self) -> usize;

    /// The disk assigned to `bucket` in a `dim`-dimensional space.
    fn disk_of_bucket(&self, bucket: BucketId, dim: usize) -> usize;
}

/// A **point-level** declusterer as consumed by the parallel engine: given
/// the insertion sequence number and the point itself, produce the disk.
pub trait Declusterer: Send + Sync {
    /// Name for experiment logs.
    fn name(&self) -> String;

    /// Number of disks.
    fn disks(&self) -> usize;

    /// Assigns the `seq`-th inserted point `p` to a disk.
    fn assign(&self, seq: u64, p: &Point) -> usize;
}

/// Round robin: data item `v_j` goes to disk `j mod n`. Ignores the data
/// distribution entirely; the simplest possible declustering and the
/// baseline of the paper's Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRobin {
    disks: usize,
}

impl RoundRobin {
    /// Creates a round-robin declusterer over `disks` disks.
    pub fn new(disks: usize) -> Result<Self, DeclusterError> {
        if disks == 0 {
            return Err(DeclusterError::ZeroDisks);
        }
        Ok(RoundRobin { disks })
    }
}

impl Declusterer for RoundRobin {
    fn name(&self) -> String {
        "round-robin".to_owned()
    }

    fn disks(&self) -> usize {
        self.disks
    }

    fn assign(&self, seq: u64, _p: &Point) -> usize {
        (seq % self.disks as u64) as usize
    }
}

/// Disk modulo \[DS 82\]: `DM(c_0,…,c_{d−1}) = (Σ c_l) mod n`. On binary
/// quadrant coordinates the sum is the popcount of the bucket number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskModulo {
    disks: usize,
}

impl DiskModulo {
    /// Creates a disk-modulo declusterer over `disks` disks.
    pub fn new(disks: usize) -> Result<Self, DeclusterError> {
        if disks == 0 {
            return Err(DeclusterError::ZeroDisks);
        }
        Ok(DiskModulo { disks })
    }
}

impl BucketDecluster for DiskModulo {
    fn name(&self) -> &'static str {
        "disk-modulo"
    }

    fn disks(&self) -> usize {
        self.disks
    }

    fn disk_of_bucket(&self, bucket: BucketId, _dim: usize) -> usize {
        (bucket.count_ones() as usize) % self.disks
    }
}

/// The FX distribution \[KP 88\]: `FX(c_0,…,c_{d−1}) = (XOR c_l) mod n`.
/// On binary quadrant coordinates the XOR of the 1-bit coordinates is their
/// parity, so FX degenerates to two distinct disks — one of the reasons it
/// performs poorly for high-dimensional NN queries (Lemma 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FxXor {
    disks: usize,
}

impl FxXor {
    /// Creates an FX declusterer over `disks` disks.
    pub fn new(disks: usize) -> Result<Self, DeclusterError> {
        if disks == 0 {
            return Err(DeclusterError::ZeroDisks);
        }
        Ok(FxXor { disks })
    }
}

impl BucketDecluster for FxXor {
    fn name(&self) -> &'static str {
        "fx"
    }

    fn disks(&self) -> usize {
        self.disks
    }

    fn disk_of_bucket(&self, bucket: BucketId, _dim: usize) -> usize {
        ((bucket.count_ones() & 1) as usize) % self.disks
    }
}

/// Hilbert declustering \[FB 93\]: bucket `c` goes to disk
/// `hilbert(c) mod n`, where `hilbert` is the d-dimensional Hilbert curve
/// on the quadrant grid (order 1 — one bit per dimension, matching the
/// binary partition every method shares in high dimensions).
#[derive(Debug, Clone)]
pub struct HilbertDecluster {
    disks: usize,
    dim: usize,
    curve: HilbertCurve,
}

impl HilbertDecluster {
    /// Creates a Hilbert declusterer for `dim` dimensions over `disks`
    /// disks.
    pub fn new(dim: usize, disks: usize) -> Result<Self, DeclusterError> {
        if disks == 0 {
            return Err(DeclusterError::ZeroDisks);
        }
        let curve = HilbertCurve::new(dim, 1).map_err(|_| DeclusterError::BadDimension { dim })?;
        Ok(HilbertDecluster { disks, dim, curve })
    }

    /// The Hilbert value of a bucket (before the modulo).
    pub fn hilbert_value(&self, bucket: BucketId) -> u128 {
        let coords: Vec<u64> = (0..self.dim).map(|i| (bucket >> i) & 1).collect();
        self.curve.encode(&coords)
    }
}

impl BucketDecluster for HilbertDecluster {
    fn name(&self) -> &'static str {
        "hilbert"
    }

    fn disks(&self) -> usize {
        self.disks
    }

    fn disk_of_bucket(&self, bucket: BucketId, dim: usize) -> usize {
        debug_assert_eq!(dim, self.dim, "dimension mismatch");
        (self.hilbert_value(bucket) % self.disks as u128) as usize
    }
}

/// Lifts a [`BucketDecluster`] to point level: the point's quadrant is
/// computed with a [`QuadrantSplitter`] (mid-point or data-quantile splits)
/// and the bucket method decides the disk.
#[derive(Clone)]
pub struct BucketBased<M> {
    method: M,
    splitter: Arc<QuadrantSplitter>,
}

impl<M: BucketDecluster> BucketBased<M> {
    /// Combines a bucket method with a splitter.
    pub fn new(method: M, splitter: QuadrantSplitter) -> Self {
        BucketBased {
            method,
            splitter: Arc::new(splitter),
        }
    }

    /// The underlying bucket method.
    pub fn method(&self) -> &M {
        &self.method
    }

    /// The splitter in use.
    pub fn splitter(&self) -> &QuadrantSplitter {
        &self.splitter
    }
}

impl<M: BucketDecluster> Declusterer for BucketBased<M> {
    fn name(&self) -> String {
        self.method.name().to_owned()
    }

    fn disks(&self) -> usize {
        self.method.disks()
    }

    fn assign(&self, _seq: u64, p: &Point) -> usize {
        let bucket = self.splitter.bucket_of(p);
        self.method.disk_of_bucket(bucket, self.splitter.dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::near_optimal::NearOptimal;

    #[test]
    fn round_robin_cycles() {
        let rr = RoundRobin::new(4).unwrap();
        let p = Point::origin(2);
        let disks: Vec<usize> = (0..8).map(|s| rr.assign(s, &p)).collect();
        assert_eq!(disks, [0, 1, 2, 3, 0, 1, 2, 3]);
        assert!(RoundRobin::new(0).is_err());
    }

    #[test]
    fn disk_modulo_is_popcount_mod_n() {
        let dm = DiskModulo::new(3).unwrap();
        assert_eq!(dm.disk_of_bucket(0b0000, 4), 0);
        assert_eq!(dm.disk_of_bucket(0b0111, 4), 0);
        assert_eq!(dm.disk_of_bucket(0b0011, 4), 2);
        assert_eq!(dm.disk_of_bucket(0b1000, 4), 1);
    }

    #[test]
    fn fx_is_parity() {
        let fx = FxXor::new(8).unwrap();
        for b in 0..16u64 {
            assert_eq!(fx.disk_of_bucket(b, 4), (b.count_ones() & 1) as usize);
        }
    }

    #[test]
    fn hilbert_uses_all_disks_on_quadrants() {
        // In 3-d with 4 disks the 8 Hilbert positions 0..7 cover each disk
        // exactly twice.
        let hi = HilbertDecluster::new(3, 4).unwrap();
        let mut counts = [0usize; 4];
        for b in 0..8u64 {
            counts[hi.disk_of_bucket(b, 3)] += 1;
        }
        assert_eq!(counts, [2, 2, 2, 2]);
    }

    #[test]
    fn hilbert_values_are_a_permutation() {
        let hi = HilbertDecluster::new(5, 4).unwrap();
        let mut seen = [false; 32];
        for b in 0..32u64 {
            let v = hi.hilbert_value(b) as usize;
            assert!(!seen[v]);
            seen[v] = true;
        }
    }

    #[test]
    fn bucket_based_lifts_to_points() {
        let m = NearOptimal::with_optimal_disks(3).unwrap();
        let splitter = QuadrantSplitter::midpoint(3).unwrap();
        let lifted = BucketBased::new(m, splitter);
        assert_eq!(lifted.disks(), 4);
        assert_eq!(lifted.name(), "near-optimal");
        // The point (0.9, 0.1, 0.9) is in bucket 0b101 = 5, color 2.
        let p = Point::new(vec![0.9, 0.1, 0.9]).unwrap();
        assert_eq!(lifted.assign(0, &p), 2);
        // Sequence number is irrelevant for bucket methods.
        assert_eq!(lifted.assign(99, &p), 2);
    }
}
