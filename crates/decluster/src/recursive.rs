//! Recursive declustering of overloaded buckets (Section 4.3).
//!
//! For highly *correlated* data even per-dimension quantile splits cannot
//! balance the disks: every 1-d marginal is balanced, yet only a few
//! quadrants carry data. The paper's answer: detect the overloaded disk and
//! **recursively decluster all of its buckets in one step** with the `col`
//! function, permuting the colors with a simple heuristic when descending a
//! level. Declustering *all* overloaded buckets would need `O(2^d)` state
//! per level; refining only the buckets of the single most loaded disk
//! keeps the rule table small, and the step can be repeated until the load
//! is balanced.

use std::collections::HashMap;

use parsim_geometry::quadrant::BucketId;
use parsim_geometry::{Point, QuadrantSplitter};

use crate::methods::Declusterer;
use crate::near_optimal::NearOptimal;
use crate::quantile::median_splits;
use crate::DeclusterError;

/// Tuning knobs of [`RecursiveDeclusterer::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecursiveConfig {
    /// Maximum number of refinement passes (the paper needed one pass for
    /// its clustered Fourier data, Figure 16).
    pub max_levels: usize,
    /// Stop refining once `max_disk_load / avg_disk_load` drops to this.
    pub imbalance_threshold: f64,
    /// Buckets with fewer points than this are never refined.
    pub min_bucket_points: usize,
    /// Split buckets at the median of their content (true) or at the
    /// region mid-point (false).
    pub median_splits: bool,
}

impl Default for RecursiveConfig {
    fn default() -> Self {
        RecursiveConfig {
            max_levels: 4,
            imbalance_threshold: 1.5,
            min_bucket_points: 32,
            median_splits: true,
        }
    }
}

/// Why [`RecursiveDeclusterer::build`] stopped refining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The imbalance dropped below the configured threshold.
    Balanced,
    /// A pass refined nothing: every candidate bucket of the most-loaded
    /// disk was too small ([`RecursiveConfig::min_bucket_points`]) or held
    /// only identical points.
    NothingToRefine,
    /// [`RecursiveConfig::max_levels`] passes ran without converging.
    MaxLevels,
}

/// Diagnostics of one refinement pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelStats {
    /// Load imbalance (`max / avg`) *before* this pass.
    pub imbalance_before: f64,
    /// The most-loaded disk this pass targeted.
    pub target_disk: usize,
    /// Buckets of the target disk that received a child partition.
    pub refined_buckets: usize,
    /// Candidate buckets skipped for holding fewer than
    /// [`RecursiveConfig::min_bucket_points`] points.
    pub skipped_small: usize,
    /// Candidate buckets skipped because all their points are identical.
    pub skipped_uniform: usize,
}

/// Build-time diagnostics of a [`RecursiveDeclusterer`]: the per-level
/// imbalance trace that documents *why* refinement converged or plateaued.
#[derive(Debug, Clone, PartialEq)]
pub struct RecursiveStats {
    /// One entry per refinement pass that ran (may be empty if the flat
    /// declustering was already balanced).
    pub levels: Vec<LevelStats>,
    /// Load imbalance after the final pass.
    pub final_imbalance: f64,
    /// Why the build loop stopped.
    pub stop: StopReason,
}

/// Per-pass refinement counters returned by the internal `refine` walk.
#[derive(Debug, Clone, Copy, Default)]
struct RefineCounts {
    refined: usize,
    skipped_small: usize,
    skipped_uniform: usize,
}

impl RefineCounts {
    fn absorb(&mut self, other: RefineCounts) {
        self.refined += other.refined;
        self.skipped_small += other.skipped_small;
        self.skipped_uniform += other.skipped_uniform;
    }
}

/// One node of the refinement tree: a quadrant partition of (a region of)
/// the data space whose buckets map to disks via the folded `col`
/// coloring, except where a child node refines a bucket further.
#[derive(Debug, Clone)]
struct Node {
    splitter: QuadrantSplitter,
    base: NearOptimal,
    /// Color rotation at this level — the paper's "permuting the colors
    /// using a simple heuristic when going to the next level of recursion".
    rotation: usize,
    children: HashMap<BucketId, Node>,
}

impl Node {
    fn disk_of_bucket(&self, bucket: BucketId, disks: usize) -> usize {
        use crate::methods::BucketDecluster;
        (self.base.disk_of_bucket(bucket, self.splitter.dim()) + self.rotation) % disks
    }

    fn assign(&self, p: &Point, disks: usize) -> usize {
        let bucket = self.splitter.bucket_of(p);
        match self.children.get(&bucket) {
            Some(child) => child.assign(p, disks),
            None => self.disk_of_bucket(bucket, disks),
        }
    }

    fn depth(&self) -> usize {
        1 + self.children.values().map(Node::depth).max().unwrap_or(0)
    }
}

/// The recursive declusterer: a near-optimal quadrant declustering whose
/// overloaded buckets are recursively re-declustered until the per-disk
/// load is balanced.
#[derive(Debug, Clone)]
pub struct RecursiveDeclusterer {
    disks: usize,
    dim: usize,
    root: Node,
    stats: RecursiveStats,
}

impl RecursiveDeclusterer {
    /// Builds the declusterer for `points` over `disks` disks.
    ///
    /// The root partition uses median (or mid-point) splits; refinement
    /// passes then repeatedly pick the most loaded disk and re-decluster
    /// all of its sufficiently large buckets one level deeper, rotating
    /// the colors per level.
    pub fn build(
        points: &[Point],
        disks: usize,
        config: RecursiveConfig,
    ) -> Result<Self, DeclusterError> {
        if disks == 0 {
            return Err(DeclusterError::ZeroDisks);
        }
        if points.is_empty() {
            return Err(DeclusterError::BadDimension { dim: 0 });
        }
        let dim = points[0].dim();
        let effective_disks = disks.min(crate::near_optimal::colors_required(dim) as usize);
        let splitter = Self::make_splitter(points, dim, config.median_splits)?;
        let base = NearOptimal::new(dim, effective_disks)?;
        let mut this = RecursiveDeclusterer {
            disks: effective_disks,
            dim,
            root: Node {
                splitter,
                base,
                rotation: 0,
                children: HashMap::new(),
            },
            stats: RecursiveStats {
                levels: Vec::new(),
                final_imbalance: 1.0,
                stop: StopReason::MaxLevels,
            },
        };

        for level in 1..=config.max_levels {
            let loads = this.load_histogram(points);
            let total: u64 = loads.iter().sum();
            let max = loads.iter().copied().max().unwrap_or(0);
            let avg = total as f64 / this.disks as f64;
            if avg == 0.0 || (max as f64) <= config.imbalance_threshold * avg {
                this.stats.stop = StopReason::Balanced;
                break;
            }
            let target = loads
                .iter()
                .enumerate()
                .max_by_key(|&(_, &l)| l)
                .map(|(i, _)| i)
                .expect("non-empty loads");
            let point_refs: Vec<&Point> = points.iter().collect();
            let disks_n = this.disks;
            let counts =
                Self::refine(&mut this.root, &point_refs, target, disks_n, level, &config)?;
            this.stats.levels.push(LevelStats {
                imbalance_before: max as f64 / avg,
                target_disk: target,
                refined_buckets: counts.refined,
                skipped_small: counts.skipped_small,
                skipped_uniform: counts.skipped_uniform,
            });
            if counts.refined == 0 {
                this.stats.stop = StopReason::NothingToRefine;
                break; // nothing left to refine — avoid spinning
            }
        }
        this.stats.final_imbalance = this.imbalance(points);
        Ok(this)
    }

    fn make_splitter<P: std::borrow::Borrow<Point>>(
        points: &[P],
        dim: usize,
        medians: bool,
    ) -> Result<QuadrantSplitter, DeclusterError> {
        if medians {
            let owned: Vec<Point> = points.iter().map(|p| p.borrow().clone()).collect();
            median_splits(&owned).map_err(|_| DeclusterError::BadDimension { dim })
        } else {
            QuadrantSplitter::midpoint(dim).map_err(|_| DeclusterError::BadDimension { dim })
        }
    }

    /// One refinement pass: descend the tree and give every sufficiently
    /// large leaf bucket of `target_disk` a child node.
    fn refine(
        node: &mut Node,
        points: &[&Point],
        target_disk: usize,
        disks: usize,
        level: usize,
        config: &RecursiveConfig,
    ) -> Result<RefineCounts, DeclusterError> {
        // Partition this node's points by bucket.
        let mut by_bucket: HashMap<BucketId, Vec<&Point>> = HashMap::new();
        for &p in points {
            by_bucket
                .entry(node.splitter.bucket_of(p))
                .or_default()
                .push(p);
        }
        let mut counts = RefineCounts::default();
        for (bucket, bucket_points) in by_bucket {
            if let Some(child) = node.children.get_mut(&bucket) {
                counts.absorb(Self::refine(
                    child,
                    &bucket_points,
                    target_disk,
                    disks,
                    level,
                    config,
                )?);
                continue;
            }
            if node.disk_of_bucket(bucket, disks) != target_disk {
                continue;
            }
            if bucket_points.len() < config.min_bucket_points {
                counts.skipped_small += 1;
                continue;
            }
            // All points identical? Splitting cannot separate them.
            if bucket_points.windows(2).all(|w| w[0] == w[1]) {
                counts.skipped_uniform += 1;
                continue;
            }
            let dim = node.splitter.dim();
            let splitter = Self::make_splitter(&bucket_points, dim, config.median_splits)?;
            let base = NearOptimal::new(
                dim,
                disks.min(crate::near_optimal::colors_required(dim) as usize),
            )?;
            node.children.insert(
                bucket,
                Node {
                    splitter,
                    base,
                    rotation: level,
                    children: HashMap::new(),
                },
            );
            counts.refined += 1;
        }
        Ok(counts)
    }

    /// Number of partition levels (1 = no refinement happened).
    pub fn levels(&self) -> usize {
        self.root.depth()
    }

    /// Build-time diagnostics: the per-pass imbalance trace and the reason
    /// refinement stopped.
    pub fn stats(&self) -> &RecursiveStats {
        &self.stats
    }

    /// Per-disk point counts under the current assignment.
    pub fn load_histogram(&self, points: &[Point]) -> Vec<u64> {
        let mut loads = vec![0u64; self.disks];
        for p in points {
            loads[self.root.assign(p, self.disks)] += 1;
        }
        loads
    }

    /// Load imbalance `max / avg` over the given points (1.0 = perfect).
    pub fn imbalance(&self, points: &[Point]) -> f64 {
        let loads = self.load_histogram(points);
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        max / (total as f64 / self.disks as f64)
    }
}

impl Declusterer for RecursiveDeclusterer {
    fn name(&self) -> String {
        format!("near-optimal+recursive(x{})", self.levels())
    }

    fn disks(&self) -> usize {
        self.disks
    }

    fn assign(&self, _seq: u64, p: &Point) -> usize {
        debug_assert_eq!(p.dim(), self.dim);
        self.root.assign(p, self.disks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::BucketBased;
    use parsim_datagen::{
        ClusteredGenerator, CorrelatedGenerator, DataGenerator, UniformGenerator,
    };

    fn flat_imbalance(method: &dyn Declusterer, points: &[Point]) -> f64 {
        let mut loads = vec![0u64; method.disks()];
        for (i, p) in points.iter().enumerate() {
            loads[method.assign(i as u64, p)] += 1;
        }
        let total: u64 = loads.iter().sum();
        let max = loads.iter().copied().max().unwrap() as f64;
        max / (total as f64 / method.disks() as f64)
    }

    #[test]
    fn uniform_data_needs_no_refinement() {
        let pts = UniformGenerator::new(6).generate(4000, 1);
        let r = RecursiveDeclusterer::build(&pts, 8, RecursiveConfig::default()).unwrap();
        assert_eq!(r.levels(), 1);
        assert!(r.imbalance(&pts) < 1.5);
    }

    #[test]
    fn correlated_data_gets_refined_and_balanced() {
        let pts = CorrelatedGenerator::new(8, 0.01).generate(8000, 5);
        // Without recursion: the flat near-optimal declustering with
        // median splits is badly imbalanced on correlated data.
        let flat = BucketBased::new(
            NearOptimal::new(8, 8).unwrap(),
            median_splits(&pts).unwrap(),
        );
        let flat_imb = flat_imbalance(&flat, &pts);
        // With recursion the imbalance must improve substantially.
        let r = RecursiveDeclusterer::build(&pts, 8, RecursiveConfig::default()).unwrap();
        let rec_imb = r.imbalance(&pts);
        assert!(r.levels() > 1, "no refinement happened");
        // The achievable ratio depends on the drawn data (≈0.70 with the
        // vendored xoshiro RNG stream); assert a solid improvement rather
        // than a stream-specific constant.
        assert!(
            rec_imb < 0.75 * flat_imb,
            "flat {flat_imb:.2} vs recursive {rec_imb:.2}"
        );
    }

    #[test]
    fn single_quadrant_clusters_are_spread() {
        // The pathological case of Section 4.3: most points in one quadrant.
        let pts = ClusteredGenerator::new(6, 2, 0.02)
            .in_single_quadrant()
            .generate(6000, 9);
        let r = RecursiveDeclusterer::build(&pts, 8, RecursiveConfig::default()).unwrap();
        let loads = r.load_histogram(&pts);
        // Every disk must receive a meaningful share.
        let min = *loads.iter().min().unwrap();
        assert!(min > 0, "some disk got nothing: {loads:?}");
        assert!(r.imbalance(&pts) < 2.0, "imbalance {}", r.imbalance(&pts));
    }

    #[test]
    fn assignment_is_deterministic_and_total() {
        let pts = CorrelatedGenerator::new(5, 0.02).generate(2000, 3);
        let r = RecursiveDeclusterer::build(&pts, 8, RecursiveConfig::default()).unwrap();
        for (i, p) in pts.iter().enumerate() {
            let d = r.assign(i as u64, p);
            assert!(d < r.disks());
            assert_eq!(d, r.assign(i as u64, p));
        }
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(matches!(
            RecursiveDeclusterer::build(&[], 4, RecursiveConfig::default()),
            Err(DeclusterError::BadDimension { .. })
        ));
        let pts = UniformGenerator::new(3).generate(10, 0);
        assert!(matches!(
            RecursiveDeclusterer::build(&pts, 0, RecursiveConfig::default()),
            Err(DeclusterError::ZeroDisks)
        ));
    }

    #[test]
    fn identical_points_terminate() {
        // All points equal: nothing can be balanced, but build must not
        // loop forever or panic.
        let p = Point::new(vec![0.3, 0.3, 0.3]).unwrap();
        let pts = vec![p; 500];
        let r = RecursiveDeclusterer::build(&pts, 4, RecursiveConfig::default()).unwrap();
        assert!(r.levels() <= 2);
        let loads = r.load_histogram(&pts);
        assert_eq!(loads.iter().sum::<u64>(), 500);
    }

    #[test]
    fn per_level_stats_document_the_plateau() {
        // The ROADMAP open item: at some seeds levels 4–5 stop improving
        // the imbalance. The per-level trace shows why: each pass only
        // refines buckets of the *single* most-loaded disk, and after two
        // or three passes that disk's surplus sits in buckets that are
        // either below `min_bucket_points` or already refined — the pass
        // then refines few (or zero) new buckets and the imbalance curve
        // flattens even though `max_levels` has not been reached.
        let mut plateaued = 0usize;
        for seed in [5u64, 7, 11, 23, 41] {
            let pts = CorrelatedGenerator::new(8, 0.01).generate(6000, seed);
            let config = RecursiveConfig {
                max_levels: 6,
                ..Default::default()
            };
            let r = RecursiveDeclusterer::build(&pts, 8, config).unwrap();
            let stats = r.stats();
            println!(
                "seed {seed}: stop={:?} final={:.3} levels={:?}",
                stats.stop,
                stats.final_imbalance,
                stats
                    .levels
                    .iter()
                    .map(|l| (l.imbalance_before, l.refined_buckets, l.skipped_small))
                    .collect::<Vec<_>>()
            );
            // The trace is internally consistent at every seed.
            assert!(!stats.levels.is_empty(), "seed {seed}: no pass recorded");
            assert!(stats.final_imbalance >= 1.0);
            assert!(
                stats.final_imbalance <= stats.levels[0].imbalance_before,
                "seed {seed}: refinement made things worse"
            );
            for l in &stats.levels {
                assert!(l.target_disk < r.disks());
                assert!(l.imbalance_before > config.imbalance_threshold);
            }
            if stats.stop == StopReason::Balanced {
                continue;
            }
            // A non-converged run must show the plateau signature: the
            // last pass refined no new bucket, or passes kept skipping
            // undersized buckets while refining hardly anything.
            let last = stats.levels.last().unwrap();
            let starved = last.refined_buckets == 0
                || stats
                    .levels
                    .iter()
                    .rev()
                    .take(2)
                    .all(|l| l.skipped_small > 0 && l.refined_buckets <= l.skipped_small);
            assert!(
                starved,
                "seed {seed}: plateau without starvation signature: {stats:?}"
            );
            plateaued += 1;
        }
        // The relaxed-threshold seeds of the original open item do exist.
        assert!(plateaued > 0, "every seed converged — plateau gone?");
    }

    #[test]
    fn disks_capped_at_colors_required() {
        // Asking for more disks than colors exist quietly caps, mirroring
        // the paper's premise that col needs at most nextpow2(d+1) disks.
        let pts = UniformGenerator::new(3).generate(100, 1);
        let r = RecursiveDeclusterer::build(&pts, 16, RecursiveConfig::default()).unwrap();
        assert_eq!(r.disks(), 4);
    }
}
