//! Declustering explorer: prints the disk assignments of every method on
//! small data spaces, verifies near-optimality, and shows the color
//! staircase of the paper's Lemma 6 (Figures 7, 8 and 10).
//!
//! ```sh
//! cargo run --release -p parsim --example decluster_explorer
//! ```

use parsim::decluster::near_optimal::{col, color_lower_bound, colors_required};
use parsim::prelude::*;

fn print_2d_grid(name: &str, method: &dyn BucketDecluster) {
    // Bucket (c0, c1): c0 = x-half, c1 = y-half. Print y downward.
    println!("  {name} (2-d quadrants):");
    for y in (0..2u64).rev() {
        let row: Vec<String> = (0..2u64)
            .map(|x| method.disk_of_bucket(x | (y << 1), 2).to_string())
            .collect();
        println!("    {}", row.join(" "));
    }
}

fn print_3d_cube(name: &str, method: &dyn BucketDecluster) {
    println!("  {name} (3-d cube, front slab then back slab):");
    for z in 0..2u64 {
        for y in (0..2u64).rev() {
            let row: Vec<String> = (0..2u64)
                .map(|x| {
                    method
                        .disk_of_bucket(x | (y << 1) | (z << 2), 3)
                        .to_string()
                })
                .collect();
            println!("    {}", row.join(" "));
        }
        println!();
    }
}

fn main() {
    println!("== Figure 7: the 3-d counterexample =====================================\n");
    let n = 4;
    let methods: Vec<(&str, Box<dyn BucketDecluster>)> = vec![
        ("disk modulo", Box::new(DiskModulo::new(n).unwrap())),
        ("FX", Box::new(FxXor::new(n).unwrap())),
        ("hilbert", Box::new(HilbertDecluster::new(3, n).unwrap())),
        (
            "near-optimal",
            Box::new(NearOptimal::with_optimal_disks(3).unwrap()),
        ),
    ];
    let graph = DiskAssignmentGraph::new(3);
    for (name, m) in &methods {
        print_3d_cube(name, m.as_ref());
        match graph.verify(m.as_ref()) {
            Ok(()) => {
                println!("    => NEAR-OPTIMAL: all direct and indirect neighbors separated\n")
            }
            Err(v) => println!(
                "    => violation: buckets {:#05b} and {:#05b} share disk {} ({:?} neighbors)\n",
                v.bucket_a, v.bucket_b, v.disk, v.kind
            ),
        }
    }

    println!("== Figure 8: coloring the 2-d disk assignment graph =====================\n");
    print_2d_grid("near-optimal", &NearOptimal::with_optimal_disks(2).unwrap());
    println!("    (all four quadrants are mutual neighbors — K4 needs 4 colors)\n");

    println!("== Worked example of Section 4.2 ========================================\n");
    println!(
        "  col(5 = 0b101, d = 3): bits 0 and 2 set -> (0+1) XOR (2+1) = 1 XOR 3 = {}\n",
        col(5, 3)
    );

    println!("== Figure 10: number of colors required by col ==========================\n");
    println!(
        "  {:>4} {:>12} {:>12} {:>10}",
        "dim", "lower bound", "col colors", "upper 2d"
    );
    for d in 2..=20 {
        println!(
            "  {:>4} {:>12} {:>12} {:>10}",
            d,
            color_lower_bound(d),
            colors_required(d),
            2 * d
        );
    }

    println!("\n== Violation counts on the 6-d graph with 8 disks =======================\n");
    let d = 6;
    let graph = DiskAssignmentGraph::new(d);
    let methods: Vec<(&str, Box<dyn BucketDecluster>)> = vec![
        ("disk modulo", Box::new(DiskModulo::new(8).unwrap())),
        ("FX", Box::new(FxXor::new(8).unwrap())),
        ("hilbert", Box::new(HilbertDecluster::new(d, 8).unwrap())),
        (
            "near-optimal",
            Box::new(NearOptimal::with_optimal_disks(d).unwrap()),
        ),
    ];
    println!(
        "  graph: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );
    for (name, m) in &methods {
        let (direct, indirect) = graph.count_violations(m.as_ref());
        println!(
            "  {:<12} {:>5} direct + {:>5} indirect collisions",
            name, direct, indirect
        );
    }
}
