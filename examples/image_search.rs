//! Image similarity search on color histograms.
//!
//! The paper's motivating application: "In image databases the images are
//! mapped into complex feature vectors consisting of color histograms …
//! and queries are processed against a database of those feature vectors."
//! This example synthesizes a database of scene images (as mixtures of
//! palette colors), indexes their 16-bin color histograms, and retrieves
//! the most similar images for a query photo — in parallel over 16 disks.
//!
//! ```sh
//! cargo run --release -p parsim --example image_search
//! ```

use parsim::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scene types with characteristic palettes (bin weights).
const SCENES: [(&str, [f64; 4]); 5] = [
    // (name, [sky, vegetation, water, warm] emphasis)
    ("beach", [0.35, 0.05, 0.40, 0.20]),
    ("forest", [0.15, 0.60, 0.05, 0.20]),
    ("city", [0.25, 0.10, 0.05, 0.60]),
    ("mountain", [0.40, 0.25, 0.10, 0.25]),
    ("sunset", [0.20, 0.05, 0.15, 0.60]),
];

/// Number of histogram bins (4 hue groups × 4 lightness bands).
const BINS: usize = 16;

struct Image {
    scene: &'static str,
    histogram: Point,
}

/// Renders a synthetic image of the given scene and computes its color
/// histogram: each pixel draws a hue group from the scene palette and a
/// lightness band, filling one of 16 bins.
fn synthesize_image(rng: &mut StdRng) -> Image {
    let (scene, palette) = SCENES[rng.random_range(0..SCENES.len())];
    // Per-image variation of the palette (time of day, framing, …).
    let weights: Vec<f64> = palette
        .iter()
        .map(|w| (w * rng.random_range(0.6..1.4_f64)).max(0.01))
        .collect();
    let total: f64 = weights.iter().sum();
    let lightness_bias = rng.random_range(0.0..1.0);

    let mut hist = vec![0u32; BINS];
    let pixels = 4096;
    for _ in 0..pixels {
        let mut x = rng.random::<f64>() * total;
        let mut hue = 0;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                hue = i;
                break;
            }
        }
        let light = ((rng.random::<f64>() * 0.7 + lightness_bias * 0.3) * 4.0) as usize;
        hist[hue * 4 + light.min(3)] += 1;
    }
    let histogram = Point::from_vec(
        hist.into_iter()
            .map(|c| (c as f64 / pixels as f64 * 4.0).min(1.0))
            .collect(),
    );
    Image { scene, histogram }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let n = 10_000;
    let images: Vec<Image> = (0..n).map(|_| synthesize_image(&mut rng)).collect();
    println!("image database: {n} synthetic photos, {BINS}-bin color histograms");

    let histograms: Vec<Point> = images.iter().map(|im| im.histogram.clone()).collect();
    let engine = ParallelKnnEngine::builder(BINS)
        .disks(16)
        .build(&histograms)
        .unwrap();
    println!(
        "engine: {} disks, load {:?}",
        engine.disks(),
        engine.load_distribution()
    );

    // Query: a fresh photo of each scene type; check that retrieval brings
    // back images of the same scene.
    println!("\nquery-by-example (10 most similar images per query):");
    let mut same_scene = 0usize;
    let mut retrieved = 0usize;
    for _ in 0..5 {
        let query = synthesize_image(&mut rng);
        let (res, cost) = engine.knn(&query.histogram, 10).unwrap();
        let hits = res
            .iter()
            .filter(|nb| images[nb.item as usize].scene == query.scene)
            .count();
        same_scene += hits;
        retrieved += res.len();
        println!(
            "  query scene {:<9} -> {:>2}/10 same-scene matches, {:>3} pages on busiest disk",
            query.scene, hits, cost.max_reads
        );
    }
    println!(
        "\noverall scene precision@10: {:.0}%",
        100.0 * same_scene as f64 / retrieved as f64
    );
}
