//! CAD part retrieval on Fourier shape descriptors — the paper's main real
//! workload — comparing near-optimal declustering against the Hilbert
//! baseline.
//!
//! ```sh
//! cargo run --release -p parsim --example cad_retrieval
//! ```

use std::sync::Arc;

use parsim::decluster::quantile::median_splits;
use parsim::prelude::*;

fn main() {
    let dim = 16;
    let n = 25_000;
    let disks = 16;
    let gen = FourierGenerator::new(dim);
    let parts = gen.generate(n, 1997);
    println!("CAD database: {n} Fourier descriptors (d = {dim}) of synthetic industrial parts");

    let config = EngineConfig::paper_defaults(dim);

    // Engine A: the paper's near-optimal declustering.
    let ours = ParallelKnnEngine::builder(dim)
        .config(config)
        .disks(disks)
        .build(&parts)
        .unwrap();

    // Engine B: Hilbert declustering on the same quadrant partition.
    let splitter = median_splits(&parts).unwrap();
    let hilbert: Arc<dyn Declusterer> = Arc::new(BucketBased::new(
        HilbertDecluster::new(dim, disks).unwrap(),
        splitter,
    ));
    let hil = ParallelKnnEngine::builder(dim)
        .config(config)
        .declusterer(hilbert)
        .build(&parts)
        .unwrap();

    println!(
        "engines: ours on {} disks, hilbert on {} disks",
        ours.disks(),
        hil.disks()
    );

    // Data-distributed query workload: parts similar to stored ones.
    let queries = QueryWorkload::DataLike { data_count: n }.generate(&gen, 40, 1997);

    for k in [1usize, 10] {
        let ours_cost = run_knn_workload(&ours, &queries, k).unwrap();
        let hil_cost = run_knn_workload(&hil, &queries, k).unwrap();
        println!("\n{k}-NN over {} queries:", queries.len());
        println!(
            "  near-optimal: {:>7.1} pages busiest disk, {:>8.1} ms modeled",
            ours_cost.avg_max_reads, ours_cost.avg_parallel_ms
        );
        println!(
            "  hilbert     : {:>7.1} pages busiest disk, {:>8.1} ms modeled",
            hil_cost.avg_max_reads, hil_cost.avg_parallel_ms
        );
        println!(
            "  improvement factor: {:.2}",
            hil_cost.avg_parallel_ms / ours_cost.avg_parallel_ms
        );
    }

    // Show one retrieval in detail.
    let (res, _) = ours.knn(&queries[0], 5).unwrap();
    println!("\nexample retrieval — 5 most similar parts to query #0:");
    for nb in res {
        println!("  part {:>6}  shape distance {:.4}", nb.item, nb.dist);
    }
}
