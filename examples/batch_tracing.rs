//! Batched queries with per-query traces: run a workload through the
//! threaded engine, print each query's per-disk page counts, pruning and
//! cache counters, and compare measured wall-clock against the modeled
//! disk service time.
//!
//! ```sh
//! cargo run --release -p parsim --example batch_tracing
//! ```

use parsim::prelude::*;
use parsim::serde::Serialize;

fn main() {
    let dim = 12;
    let n = 20_000;
    let disks = 8;
    let data = UniformGenerator::new(dim).generate(n, 42);
    let config = EngineConfig::paper_defaults(dim);

    // A cached engine: each disk gets a small LRU page cache, so repeated
    // regions of the query workload stop charging the disks.
    let engine = ParallelKnnEngine::builder(dim)
        .config(config)
        .disks(disks)
        .page_cache(256)
        .build(&data)
        .expect("engine builds on non-empty data");
    println!(
        "engine: {n} vectors ({dim}-d) on {} disks, {}-page cache each",
        engine.disks(),
        256
    );

    // Answer a whole workload on a bounded worker pool (one worker per
    // available core; every worker owns one query at a time).
    let queries = UniformGenerator::new(dim).generate(12, 7);
    let results = engine.knn_batch(&queries, 10).expect("batch runs");

    println!("\nper-query traces:");
    println!(
        "  {:>5}  {:>7}  {:>7}  {:>6}  {:>6}  {:>9}  {:>9}  {:>8}",
        "query", "pages", "busiest", "pruned", "hits", "wall", "modeled", "speedup"
    );
    for (i, (neighbors, trace)) in results.iter().enumerate() {
        assert_eq!(neighbors.len(), 10);
        println!(
            "  {:>5}  {:>7}  {:>7}  {:>6}  {:>6}  {:>7.2}ms  {:>7.0}ms  {:>7.2}x",
            i,
            trace.total_pages(),
            trace.max_pages(),
            trace.candidates_pruned,
            trace.cache_hits,
            trace.wall_time.as_secs_f64() * 1e3,
            trace.modeled_parallel.as_secs_f64() * 1e3,
            trace.modeled_speedup(),
        );
    }

    // Traces are serde-serializable for offline analysis.
    let (_, first) = &results[0];
    println!("\nfirst trace as JSON:\n{}", first.to_json());

    // The same queries again: the caches are warm now, so the disks serve
    // far fewer pages.
    let warm = engine.knn_batch(&queries, 10).expect("warm batch runs");
    let cold_hits: u64 = results.iter().map(|(_, t)| t.cache_hits).sum();
    let warm_hits: u64 = warm.iter().map(|(_, t)| t.cache_hits).sum();
    println!("\ncache hits: {cold_hits} cold -> {warm_hits} warm");
}
