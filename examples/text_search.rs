//! Similar-substring search on text descriptors, demonstrating the
//! engine's dynamic side: online inserts, drift detection with the
//! adaptive 0.5-quantile tracker, and reorganization.
//!
//! ```sh
//! cargo run --release -p parsim --example text_search
//! ```

use parsim::decluster::quantile::median_splits;
use parsim::decluster::quantile::AdaptiveQuantile;
use parsim::prelude::*;

fn main() {
    let dim = 15; // the paper's text descriptors are 15-dimensional
    let n = 20_000;
    let gen = TextDescriptorGenerator::new(dim);
    let descriptors = gen.generate(n, 7);
    println!("text database: {n} substring descriptors (d = {dim})");

    let engine = ParallelKnnEngine::builder(dim)
        .disks(16)
        .ingest(IngestConfig::new(8_192))
        .build(&descriptors)
        .unwrap();
    println!(
        "engine: {} disks, load {:?}",
        engine.disks(),
        engine.load_distribution()
    );

    // Similarity query: find substrings most similar to a given one.
    let queries = QueryWorkload::DataLike { data_count: n }.generate(&gen, 5, 7);
    for (qi, q) in queries.iter().enumerate() {
        let (res, cost) = engine.knn(q, 3).unwrap();
        println!(
            "query {qi}: top-3 similar substrings = {:?} ({} pages busiest disk)",
            res.iter().map(|nb| nb.item).collect::<Vec<_>>(),
            cost.max_reads
        );
    }

    // Dynamic phase: a stream of new documents arrives whose letter
    // statistics drift (different corpus seed). The adaptive quantile
    // tracker notices the drift; we then reorganize.
    let splitter = median_splits(&descriptors).unwrap();
    let mut tracker = AdaptiveQuantile::new(&splitter, 1.8);
    let stream = TextDescriptorGenerator::new(dim).generate(5_000, 999);
    for p in &stream {
        tracker.observe(p);
        engine.insert(p.clone()).unwrap();
    }
    println!(
        "\nafter inserting {} new substrings: load {:?}",
        stream.len(),
        engine.load_distribution()
    );
    if tracker.needs_reorganization() {
        println!("adaptive quantile tracker: distribution drifted -> reorganizing");
        engine.reorganize().unwrap();
        println!(
            "after reorganization: load {:?}",
            engine.load_distribution()
        );
    } else {
        println!("adaptive quantile tracker: distribution stable, no reorganization needed");
    }

    // Queries still work after the dynamic phase.
    let (res, _) = engine.knn(&queries[0], 3).unwrap();
    println!(
        "\npost-reorganization query: top-3 = {:?}",
        res.iter().map(|nb| nb.item).collect::<Vec<_>>()
    );
}
