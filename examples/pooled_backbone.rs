//! The persistent query backbone: the same engine on the scoped and the
//! pooled execution modes, showing bit-identical answers and traces,
//! pipelined batches with submit/wait handles, and the modeled
//! throughput gain of dropping the per-query barrier.
//!
//! ```sh
//! cargo run --release -p parsim --example pooled_backbone
//! ```

use parsim::prelude::*;

fn main() {
    let dim = 8;
    let n = 20_000;
    let disks = 16;
    let k = 5;
    let data = UniformGenerator::new(dim).generate(n, 42);
    let queries = UniformGenerator::new(dim).generate(32, 7);

    // Two engines over the same points: the scoped reference (threads
    // spawned per query) and the persistent per-disk worker pool.
    let scoped = ParallelKnnEngine::builder(dim)
        .disks(disks)
        .build(&data)
        .expect("engine builds");
    let pooled = ParallelKnnEngine::builder(dim)
        .disks(disks)
        .execution(ExecutionMode::Pooled)
        .build(&data)
        .expect("engine builds");
    println!(
        "engines: {n} vectors ({dim}-d) on {} disks; scoped vs pooled",
        scoped.disks()
    );

    // Pipelined batch: every query is enqueued up front and travels
    // worker-to-worker along its MINDIST itinerary; query i+1 searches
    // disk 0 while query i searches disk 3.
    let opts = QueryOptions::traced(k);
    let handles: Vec<PendingQuery> = queries
        .iter()
        .map(|q| pooled.submit(q, &opts).expect("submit"))
        .collect();
    let pooled_results: Vec<QueryResult> = handles
        .into_iter()
        .map(|h| h.wait().expect("query succeeds"))
        .collect();

    // Same queries on the scoped reference batch path.
    let scoped_results = scoped.knn_batch(&queries, k).expect("batch runs");

    // The backbone guarantee: answers AND the deterministic RKV traces
    // are bit-identical between the two modes.
    let mut barrier_ms = 0.0f64;
    let mut per_disk_totals = vec![0u64; disks];
    let model = *pooled.array().model();
    for (r, (want, want_trace)) in pooled_results.iter().zip(&scoped_results) {
        assert_eq!(&r.neighbors, want);
        let trace = r.trace.as_ref().expect("trace requested");
        assert_eq!(trace.per_disk_pages, want_trace.per_disk_pages);
        assert_eq!(trace.dist_evals, want_trace.dist_evals);
        let max = trace.per_disk_pages.iter().copied().max().unwrap_or(0);
        barrier_ms += model.service_time(max).as_secs_f64() * 1e3;
        for (acc, p) in per_disk_totals.iter_mut().zip(&trace.per_disk_pages) {
            *acc += p;
        }
    }
    println!(
        "{} queries: pooled answers and page traces identical to scoped",
        queries.len()
    );

    // The throughput story (host-independent, the paper's disk model):
    // scoped holds every disk until a query's slowest disk finishes;
    // pooled lets the busiest disk's total work gate the whole batch.
    let pipeline_ms = per_disk_totals
        .iter()
        .map(|&p| model.service_time(p).as_secs_f64() * 1e3)
        .fold(0.0f64, f64::max);
    println!("modeled batch makespan, barrier (scoped): {barrier_ms:.0} ms");
    println!("modeled batch makespan, pipeline (pooled): {pipeline_ms:.0} ms");
    println!(
        "modeled sustained-throughput gain: {:.2}x",
        barrier_ms / pipeline_ms
    );
}
