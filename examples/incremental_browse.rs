//! Distance browsing, ε-range queries, page caching and batch throughput —
//! the extension APIs beyond the paper's core experiments.
//!
//! ```sh
//! cargo run --release -p parsim --example incremental_browse
//! ```

use parsim::parallel::throughput::run_batch;
use parsim::prelude::*;

fn main() {
    let dim = 12;
    let n = 30_000;
    let data = UniformGenerator::new(dim).generate(n, 2026);
    let config = EngineConfig::paper_defaults(dim);
    let engine = DeclusteredXTree::build_near_optimal(&data, 16, config).unwrap();
    let query = UniformGenerator::new(dim).generate(1, 1).pop().unwrap();

    // 1. Distance browsing: neighbors stream in ascending order; stop
    //    whenever the next candidate is already too far.
    println!("distance browsing (stop at distance 0.55):");
    let mut it = engine.nn_iter(&query);
    while let Some(bound) = it.next_distance_bound() {
        if bound > 0.55 {
            break; // nothing closer than the cutoff remains
        }
        match it.next() {
            Some(nb) if nb.dist <= 0.55 => {
                println!("  item {:>6} at {:.4}", nb.item, nb.dist)
            }
            _ => break,
        }
    }
    println!("  ({} neighbors browsed)\n", it.yielded());

    // 2. ε-range similarity query with cost accounting.
    let (hits, cost) = engine.range_query(&query, 0.6).unwrap();
    println!(
        "range query (r = 0.6): {} matches, {} pages on busiest disk",
        hits.len(),
        cost.max_reads
    );

    // 3. Saturated batch throughput (the paper's future-work metric).
    let queries = UniformGenerator::new(dim).generate(32, 3);
    let report = run_batch(&engine, &queries, 10).unwrap();
    println!(
        "\nbatch of {}: {:.2} q/s sustained, {:.0} ms unloaded latency, imbalance {:.2}",
        report.queries,
        report.throughput_qps,
        report.unloaded_latency_ms,
        report.imbalance()
    );

    // 4. Page caching: the same tree behind an LRU cache — repeated
    //    queries stop costing I/O.
    use parsim::index::DiskSink;
    use std::sync::Arc;
    let disk = Arc::new(SimDisk::new(0));
    let sink = Arc::new(CachingSink::new(
        Arc::new(DiskSink(Arc::clone(&disk))),
        4096,
    ));
    let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
    let items: Vec<(Point, u64)> = data
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();
    let tree = SpatialTree::bulk_load(params, items)
        .unwrap()
        .with_sink(sink.clone() as Arc<dyn parsim::index::NodeSink>);
    for round in 0..3 {
        let before = disk.read_count();
        tree.knn(&query, 10, KnnAlgorithm::Rkv);
        println!(
            "\ncached query round {round}: {} disk pages (hit rate so far {:.0}%)",
            disk.read_count() - before,
            sink.hit_rate() * 100.0
        );
    }
}
