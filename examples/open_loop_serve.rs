//! The serve layer end to end: bounded admission with typed backpressure,
//! modeled per-query deadlines that shed doomed work, and cross-query
//! page coalescing inside a wave — with every decision visible in the
//! engine's metrics registry.
//!
//! ```sh
//! cargo run --release -p parsim --example open_loop_serve
//! ```

use std::time::Duration;

use parsim::prelude::*;

fn main() {
    let dim = 8;
    let n = 20_000;
    let disks = 8;
    let k = 10;
    let data = ClusteredGenerator::new(dim, 10, 0.05).generate(n, 42);
    let bases = ClusteredGenerator::new(dim, 10, 0.05).generate(8, 7);

    // 1. Backpressure: a tightly bounded engine rejects what it cannot
    //    queue instead of buffering without limit.
    let bounded = ParallelKnnEngine::builder(dim)
        .disks(disks)
        .admission(AdmissionConfig::new(1))
        .metrics(true)
        .build(&data)
        .expect("engine builds");
    let opts = QueryOptions::new(k);
    let mut admitted = Vec::new();
    let mut rejected = 0usize;
    for q in &bases {
        for _ in 0..16 {
            match bounded.submit(q, &opts) {
                Ok(pending) => admitted.push(pending),
                Err(EngineError::Overloaded { disk, depth }) => {
                    rejected += 1;
                    let _ = (disk, depth); // which queue was full, how deep
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
    let answered = admitted.len();
    for pending in admitted {
        pending.wait().expect("admitted queries complete");
    }
    println!("bounded admission: {answered} answered, {rejected} rejected (capacity 1/disk)");

    // 2. Deadlines: a modeled service-time budget sheds queries the disks
    //    could never answer in time — typed, not silently dropped.
    let deadline = ParallelKnnEngine::builder(dim)
        .disks(disks)
        .admission(AdmissionConfig::unbounded().with_deadline(Duration::ZERO))
        .metrics(true)
        .build(&data)
        .expect("engine builds");
    let mut shed = 0usize;
    for q in &bases {
        match deadline.submit(q, &opts).expect("unbounded admits").wait() {
            Ok(_) => {}
            Err(EngineError::DeadlineExceeded { .. }) => shed += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    println!(
        "zero deadline: {shed}/{} queries shed mid-flight",
        bases.len()
    );

    // 3. Coalescing: a wave of near-identical queries shares leaf reads;
    //    answers and logical traces stay bit-identical, only the physical
    //    read count drops.
    let serving = ParallelKnnEngine::builder(dim)
        .disks(disks)
        .admission(AdmissionConfig::unbounded().with_coalescing(true))
        .metrics(true)
        .build(&data)
        .expect("engine builds");
    let reference = ParallelKnnEngine::builder(dim)
        .disks(disks)
        .execution(ExecutionMode::Pooled)
        .build(&data)
        .expect("engine builds");
    let topts = QueryOptions::traced(k);
    let wave: Vec<Point> = std::iter::repeat(bases[0].clone()).take(6).collect();
    let results = serving
        .query_wave(&wave, &topts)
        .expect("wave submits")
        .into_iter()
        .map(|r| r.expect("wave completes"))
        .collect::<Vec<_>>();
    let mut coalesced = 0u64;
    let mut logical = 0u64;
    for (q, r) in wave.iter().zip(&results) {
        let want = reference.query(q, &topts).expect("reference");
        assert_eq!(r.neighbors, want.neighbors, "answers are bit-identical");
        let trace = r.trace.as_ref().expect("traced");
        assert_eq!(
            trace.per_disk_pages,
            want.trace.as_ref().expect("traced").per_disk_pages,
            "logical traces are bit-identical"
        );
        coalesced += trace.coalesced_reads();
        logical += trace.total_pages();
    }
    println!(
        "wave of {}: {coalesced} of {logical} logical reads coalesced away",
        wave.len()
    );

    // 4. Every decision above is on the registry: shed counts by reason,
    //    coalesced reads per disk, queue depths, deadline overshoot.
    let snap = serving.metrics().expect("metrics on").snapshot();
    println!(
        "registry: parsim_coalesced_reads_total = {} (== trace sum)",
        snap.counter_total("parsim_coalesced_reads_total")
    );
    let bounded_snap = bounded.metrics().expect("metrics on").snapshot();
    println!(
        "registry: parsim_queries_shed_total{{reason=overloaded}} = {} (== rejections)",
        bounded_snap
            .counter_with("parsim_queries_shed_total", &[("reason", "overloaded")])
            .unwrap_or(0)
    );
    let deadline_snap = deadline.metrics().expect("metrics on").snapshot();
    println!(
        "registry: parsim_queries_shed_total{{reason=deadline}} = {} (== typed errors)",
        deadline_snap
            .counter_with("parsim_queries_shed_total", &[("reason", "deadline")])
            .unwrap_or(0)
    );
}
