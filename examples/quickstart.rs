//! Quickstart: build a parallel similarity-search engine, run a query, and
//! compare it against the sequential baseline.
//!
//! ```sh
//! cargo run --release -p parsim --example quickstart
//! ```

use parsim::parallel::metrics::{run_sequential_workload, speedup};
use parsim::prelude::*;

fn main() {
    // A 12-dimensional feature database of 20 000 vectors.
    let dim = 12;
    let n = 20_000;
    let data = UniformGenerator::new(dim).generate(n, 42);
    println!("database: {n} uniform {dim}-d feature vectors");

    // The paper's setup: X-tree per disk, RKV k-NN, near-optimal
    // declustering over 16 simulated disks.
    let disks = 16;
    let config = EngineConfig::paper_defaults(dim);
    let engine = ParallelKnnEngine::builder(dim)
        .config(config)
        .disks(disks)
        .build(&data)
        .expect("engine builds on non-empty data");
    println!(
        "engine: {} disks, declusterer = {}",
        engine.disks(),
        engine.declusterer().name()
    );
    println!("load per disk: {:?}", engine.load_distribution());

    // One similarity query.
    let query = UniformGenerator::new(dim).generate(1, 7).pop().unwrap();
    let (neighbors, cost) = engine.knn(&query, 10).unwrap();
    println!("\n10 nearest neighbors of the query:");
    for nb in &neighbors {
        println!("  item {:>6}  distance {:.4}", nb.item, nb.dist);
    }
    println!(
        "\nquery cost: {} pages on the busiest disk, {} pages total",
        cost.max_reads, cost.total_reads
    );
    println!(
        "modeled parallel search time: {:.1} ms (sequential: {:.1} ms)",
        cost.parallel_time.as_secs_f64() * 1e3,
        cost.sequential_time.as_secs_f64() * 1e3
    );

    // Speed-up over the single-disk X-tree, averaged over a workload.
    let queries = UniformGenerator::new(dim).generate(30, 99);
    let seq = SequentialEngine::build(&data, config).unwrap();
    let par_cost = run_knn_workload(&engine, &queries, 10).unwrap();
    let seq_cost = run_sequential_workload(&seq, &queries, 10).unwrap();
    println!(
        "\nworkload of {} queries: speed-up over the sequential X-tree = {:.2} (ideal {})",
        queries.len(),
        speedup(&seq_cost, &par_cost),
        disks
    );
}
