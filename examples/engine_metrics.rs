//! The engine-wide metrics registry: opt in with `.metrics(true)`, run a
//! workload, and export deterministic Prometheus-text or JSON snapshots.
//! The registry records counts and *modeled* durations only — never
//! wall-clock — so replaying a seeded workload reproduces the snapshot
//! byte-for-byte, and every cumulative total equals the sum over the
//! per-query traces.
//!
//! ```sh
//! cargo run --release -p parsim --example engine_metrics
//! ```

use parsim::prelude::*;

fn main() {
    let dim = 8;
    let n = 20_000;
    let k = 10;
    let data = ClusteredGenerator::new(dim, 8, 0.05).generate(n, 71);
    let queries = ClusteredGenerator::new(dim, 8, 0.05).generate(48, 72);

    // Metrics are off by default (zero atomics on the query path); the
    // builder knob turns the registry on.
    let engine = ParallelKnnEngine::builder(dim)
        .disks(8)
        .replicas(1)
        .page_cache(256)
        .execution(ExecutionMode::Pooled)
        .metrics(true)
        .build(&data)
        .expect("engine builds");
    println!(
        "engine: {n} vectors ({dim}-d) on {} disks, pooled, metrics on\n",
        engine.disks()
    );

    // A healthy batch, then the same queries with one loaded disk failed
    // over to its replicas — the registry keeps counting across both.
    let results = engine.knn_batch(&queries, k).expect("healthy batch");
    let failed = engine
        .load_distribution()
        .iter()
        .position(|&l| l > 0)
        .expect("some disk holds data");
    engine.faults().fail(failed);
    engine.knn_batch(&queries, k).expect("degraded batch");

    // One snapshot of everything the engine has done so far.
    let snapshot = engine.metrics().expect("metrics enabled").snapshot();
    println!("registry totals after {} queries:", 2 * queries.len());
    for name in [
        "parsim_queries_completed_total",
        "parsim_queries_degraded_total",
        "parsim_disk_pages_total",
        "parsim_dist_evals_total",
        "parsim_dist_evals_saved_total",
        "parsim_cache_hits_total",
        "parsim_replica_pages_total",
    ] {
        println!("  {name:<36} {}", snapshot.counter_total(name));
    }

    // The registry is the per-query traces, accumulated: the healthy
    // batch's trace sums match what the counters held at that point.
    let healthy_pages: u64 = results
        .iter()
        .map(|(_, t)| t.per_disk_pages.iter().sum::<u64>())
        .sum();
    println!("\nhealthy batch pages (trace sum): {healthy_pages}");

    // The end-to-end latency histogram records *modeled* service time,
    // so its quantiles are reproducible across runs.
    let latency = snapshot
        .histogram_with("parsim_query_latency_micros", &[])
        .expect("latency histogram");
    println!(
        "modeled latency: {} samples, mean {:.0} us",
        latency.count,
        latency.sum as f64 / latency.count.max(1) as f64
    );

    // Deterministic exporters: Prometheus text exposition and JSON.
    let prom = snapshot.to_prometheus();
    let head: String = prom.lines().take(8).collect::<Vec<_>>().join("\n");
    println!("\nprometheus exposition (first lines):\n{head}");
    println!("\njson export: {} bytes", snapshot.to_json().len());
}
