//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! slice of `rand` it uses: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! and the [`Rng`] extension methods [`Rng::random`] and
//! [`Rng::random_range`] for the primitive types that appear in the data
//! generators and tests.
//!
//! [`rngs::StdRng`] is **xoshiro256++** seeded through SplitMix64 — a
//! well-studied generator that comfortably passes the statistical checks in
//! the test suite. It is *not* the ChaCha12 generator of the real crate, so
//! absolute value streams differ; the workspace only relies on determinism
//! for a fixed seed, never on particular values.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `Rng`.
///
/// The stand-in for `rand`'s `StandardUniform` distribution: floats are
/// uniform in `[0, 1)`, integers and `bool` over their whole range.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (`rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Wrapping arithmetic: sign-extending casts would underflow
                // the plain subtraction for negative `lo`.
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Draws one value from an explicit distribution (`rand`'s
    /// `Rng::sample`).
    fn sample<T, D: distr::Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Non-uniform distributions (stand-in for `rand::distr` /
/// `rand_distr`).
pub mod distr {
    use super::RngCore;

    /// Types that produce values of `T` from a source of randomness.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard normal distribution N(0, 1) over `f64`.
    ///
    /// Sampled by the Box–Muller transform: two uniform draws per pair of
    /// normals, with the second normal discarded so the draw count per
    /// sample is constant (two `next_u64` words) — fixed-seed streams stay
    /// reproducible regardless of how callers interleave other draws.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct StandardNormal;

    impl Distribution<f64> for StandardNormal {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // u1 in (0, 1]: avoids ln(0) without a rejection loop, keeping
            // the draw count deterministic.
            let u1 = 1.0 - <f64 as super::Standard>::sample(rng);
            let u2 = <f64 as super::Standard>::sample(rng);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            r * theta.cos()
        }
    }

    /// The normal distribution N(mean, std_dev²) over `f64`.
    #[derive(Debug, Clone, Copy)]
    pub struct Normal {
        mean: f64,
        std_dev: f64,
    }

    impl Normal {
        /// Creates a normal distribution.
        ///
        /// # Panics
        ///
        /// Panics if `std_dev` is negative or not finite.
        pub fn new(mean: f64, std_dev: f64) -> Normal {
            assert!(
                std_dev.is_finite() && std_dev >= 0.0,
                "std_dev must be finite and non-negative, got {std_dev}"
            );
            Normal { mean, std_dev }
        }
    }

    impl Distribution<f64> for Normal {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            self.mean + self.std_dev * StandardNormal.sample(rng)
        }
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let i = rng.random_range(3usize..7);
            assert!((3..7).contains(&i));
            let j = rng.random_range(10u64..=10);
            assert_eq!(j, 10);
            let x = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn signed_inclusive_ranges_span_negative_bounds() {
        // Regression: `lo as u128` sign-extends, so a plain
        // `hi - lo + 1` span underflowed for negative `lo`.
        let mut rng = StdRng::seed_from_u64(6);
        let (mut lo_seen, mut hi_seen) = (i32::MAX, i32::MIN);
        for _ in 0..10_000 {
            let v = rng.random_range(-60i32..=60);
            assert!((-60..=60).contains(&v));
            lo_seen = lo_seen.min(v);
            hi_seen = hi_seen.max(v);
        }
        assert_eq!((lo_seen, hi_seen), (-60, 60));
        assert_eq!(rng.random_range(i64::MIN..=i64::MIN), i64::MIN);
        assert_eq!(rng.random_range(-5i8..=-5), -5);
    }

    #[test]
    fn normal_sampling_is_deterministic_for_fixed_seed() {
        use super::distr::{Normal, StandardNormal};
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..256 {
            let x: f64 = a.sample(StandardNormal);
            let y: f64 = b.sample(StandardNormal);
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let n = Normal::new(3.0, 0.25);
        let x = a.sample(n);
        let y = b.sample(n);
        assert_eq!(x.to_bits(), y.to_bits());
    }

    #[test]
    fn normal_moments_are_plausible() {
        use super::distr::{Normal, StandardNormal};
        let mut rng = StdRng::seed_from_u64(12);
        let n = 50_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x: f64 = rng.sample(StandardNormal);
            assert!(x.is_finite());
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");

        let shifted = Normal::new(-2.0, 3.0);
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.sample(shifted);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean + 2.0).abs() < 0.06, "mean {mean}");
        assert!((var - 9.0).abs() < 0.4, "var {var}");
    }

    #[test]
    #[should_panic(expected = "std_dev must be finite")]
    fn normal_rejects_negative_std_dev() {
        let _ = super::distr::Normal::new(0.0, -1.0);
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues {trues}");
    }
}
