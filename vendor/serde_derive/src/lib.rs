//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually derives on:
//!
//! * structs with named fields → a real field-by-field JSON serializer,
//! * tuple structs → a JSON array serializer,
//! * enums with unit variants → the variant name as a JSON string.
//!
//! Generic types are intentionally unsupported (the workspace derives only
//! on concrete types); the macro fails with a clear compile error if one
//! appears. Parsing is done directly on the token stream because the
//! container has no `syn`/`quote`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What shape the deriving type has.
enum Shape {
    /// Named-field struct with the listed field names.
    Struct(Vec<String>),
    /// Tuple struct with this many fields.
    TupleStruct(usize),
    /// Enum whose variants are all unit variants.
    UnitEnum(Vec<String>),
}

fn parse_input(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '<') {
        panic!("serde_derive stub: generic types are not supported (deriving on `{name}`)");
    }

    match (&kind[..], &tokens[i]) {
        ("struct", TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            (name, Shape::Struct(named_fields(g.stream())))
        }
        ("struct", TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            (name, Shape::TupleStruct(tuple_arity(g.stream())))
        }
        ("enum", TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let variants = unit_variants(g.stream(), &name);
            (name, Shape::UnitEnum(variants))
        }
        _ => panic!("serde_derive stub: unsupported shape for `{name}`"),
    }
}

/// Extracts field names from the body of a named-field struct.
fn named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility before the field name.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        let TokenTree::Ident(id) = &tokens[i] else {
            panic!(
                "serde_derive stub: expected field name, found {}",
                tokens[i]
            );
        };
        fields.push(id.to_string());
        i += 1;
        // Expect `:`; then skip the type until a top-level comma, tracking
        // angle-bracket depth so `Vec<u64>` style generics don't confuse
        // the scan (commas inside parens/brackets are token groups already).
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde_derive stub: expected `:` after field name"
        );
        i += 1;
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct body.
fn tuple_arity(body: TokenStream) -> usize {
    let mut arity = 0;
    let mut saw_tokens = false;
    let mut angle = 0i32;
    for t in body {
        saw_tokens = true;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => arity += 1,
            _ => {}
        }
    }
    if saw_tokens {
        arity + 1
    } else {
        0
    }
}

/// Extracts unit-variant names from an enum body.
fn unit_variants(body: TokenStream, name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
                match tokens.get(i) {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        // Discriminant: skip `= expr` up to the comma.
                        while i < tokens.len()
                            && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
                        {
                            i += 1;
                        }
                        i += 1;
                    }
                    Some(TokenTree::Group(_)) => panic!(
                        "serde_derive stub: enum `{name}` has a payload variant; \
                         only unit enums are supported"
                    ),
                    Some(other) => {
                        panic!("serde_derive stub: unexpected token {other} in enum `{name}`")
                    }
                }
            }
            other => panic!("serde_derive stub: unexpected token {other} in enum `{name}`"),
        }
    }
    variants
}

/// Derives a JSON-writing `serde::Serialize` implementation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match shape {
        Shape::Struct(fields) => {
            let mut s = String::from("out.begin_object();\n");
            for f in &fields {
                s.push_str(&format!("out.field(\"{f}\", &self.{f});\n"));
            }
            s.push_str("out.end_object();");
            s
        }
        Shape::TupleStruct(arity) => {
            let mut s = String::from("out.begin_array();\n");
            for idx in 0..arity {
                s.push_str(&format!("out.element(&self.{idx});\n"));
            }
            s.push_str("out.end_array();");
            s
        }
        Shape::UnitEnum(variants) => {
            let mut s = String::from("let name = match self {\n");
            for v in &variants {
                s.push_str(&format!("{name}::{v} => \"{v}\",\n"));
            }
            s.push_str("};\nout.string(name);");
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_into(&self, out: &mut ::serde::json::JsonWriter) {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated impl parses")
}

/// Derives a marker `serde::Deserialize` implementation.
///
/// Nothing in this workspace parses serialized data back, so the stub only
/// has to prove the type *opted in* to deserialization; vendoring the real
/// serde restores full functionality without code changes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _) = parse_input(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde_derive stub: generated impl parses")
}
