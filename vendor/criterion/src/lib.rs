//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — benchmark
//! groups, [`BenchmarkId`], [`Bencher::iter`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock runner: a short warm-up, then `sample_size` timed batches,
//! reporting the per-iteration mean and min/max batch means on stdout.
//!
//! No statistical analysis, plots, or saved baselines; swap the workspace
//! dependency back to the real crate for those.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (one per binary).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, 10, &mut f);
        self
    }
}

/// Rate metadata attached to a group (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Records the group's throughput denominator (printed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Elements(n) => println!("  throughput: {n} elements/iter"),
            Throughput::Bytes(n) => println!("  throughput: {n} bytes/iter"),
        }
        self
    }

    /// Benchmarks `f` under this group, labeled by `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A two-part benchmark label (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Times closures inside one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly for this batch and records the elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up + calibration: target ~25 ms per batch, at least 1 iter.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters_per_batch =
        (Duration::from_millis(25).as_nanos() / per_iter.as_nanos()).max(1) as u64;

    let mut means: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        means.push(b.elapsed.as_secs_f64() / iters_per_batch as f64);
    }
    let mean = means.iter().sum::<f64>() / means.len() as f64;
    let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = means.iter().copied().fold(0.0f64, f64::max);
    println!(
        "  {label}: mean {:.3} ms/iter (batch means {:.3}..{:.3} ms, {} x {} iters)",
        mean * 1e3,
        lo * 1e3,
        hi * 1e3,
        samples,
        iters_per_batch
    );
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n) * black_box(n))
        });
        group.bench_function("cube", |b| b.iter(|| black_box(3u64).pow(3)));
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut c = Criterion::default();
        tiny_bench(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(1u32) + 1));
    }
}
