//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the thin API subset it actually uses: [`Mutex`] and [`RwLock`] with
//! `parking_lot`'s non-poisoning guard-returning interface, backed by the
//! standard-library locks. Poisoning is translated into a panic, which is
//! what `parking_lot` semantics amount to for this workspace (a panicked
//! writer aborts the test anyway).
//!
//! Only the methods used by the workspace are provided; this is not a
//! general replacement.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::sync;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
