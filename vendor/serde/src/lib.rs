//! Offline stand-in for the `serde` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the serde surface it relies on:
//!
//! * [`Serialize`] — object-safe trait writing the value as JSON through a
//!   [`json::JsonWriter`]; [`Serialize::to_json`] renders a `String`. The
//!   derive macro (feature `derive`) generates real field-by-field
//!   implementations, so cost records and query traces serialize to
//!   working JSON.
//! * [`Deserialize`] — a marker trait; nothing in the workspace reads
//!   serialized data back, so derives only prove the type opted in.
//!
//! Swapping the workspace dependency back to the real `serde` + `serde_json`
//! requires no changes at the derive sites.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types that can serialize themselves as JSON.
pub trait Serialize {
    /// Writes `self` into the given JSON writer.
    fn serialize_into(&self, out: &mut json::JsonWriter);

    /// Renders `self` as a JSON string.
    fn to_json(&self) -> String
    where
        Self: Sized,
    {
        let mut w = json::JsonWriter::new();
        self.serialize_into(&mut w);
        w.into_string()
    }
}

/// Marker for types that opted into deserialization.
///
/// The lifetime parameter mirrors the real trait so `#[derive(Deserialize)]`
/// sites stay source-compatible with upstream serde.
pub trait Deserialize<'de>: Sized {}

/// The minimal JSON emission machinery used by [`Serialize`].
pub mod json {
    use super::Serialize;

    /// An append-only JSON writer with comma bookkeeping.
    #[derive(Debug, Default)]
    pub struct JsonWriter {
        buf: String,
        /// Whether the current nesting level already has an element.
        has_element: Vec<bool>,
    }

    impl JsonWriter {
        /// Creates an empty writer.
        pub fn new() -> Self {
            JsonWriter::default()
        }

        /// Finishes writing and returns the accumulated JSON text.
        pub fn into_string(self) -> String {
            self.buf
        }

        fn comma(&mut self) {
            if let Some(top) = self.has_element.last_mut() {
                if *top {
                    self.buf.push(',');
                }
                *top = true;
            }
        }

        /// Opens a JSON object.
        pub fn begin_object(&mut self) {
            self.comma();
            self.buf.push('{');
            self.has_element.push(false);
        }

        /// Closes the current JSON object.
        pub fn end_object(&mut self) {
            self.has_element.pop();
            self.buf.push('}');
        }

        /// Opens a JSON array.
        pub fn begin_array(&mut self) {
            self.comma();
            self.buf.push('[');
            self.has_element.push(false);
        }

        /// Closes the current JSON array.
        pub fn end_array(&mut self) {
            self.has_element.pop();
            self.buf.push(']');
        }

        /// Writes an object field: `"name": <value>`.
        pub fn field(&mut self, name: &str, value: &dyn Serialize) {
            self.comma();
            self.write_escaped(name);
            self.buf.push(':');
            // The value must not emit a leading comma of its own.
            self.has_element.push(false);
            value.serialize_into(self);
            self.has_element.pop();
        }

        /// Writes one array element.
        pub fn element(&mut self, value: &dyn Serialize) {
            value.serialize_into(self);
        }

        /// Writes a JSON string scalar.
        pub fn string(&mut self, s: &str) {
            self.comma();
            self.write_escaped(s);
        }

        /// Writes a raw scalar token (already valid JSON).
        pub fn raw(&mut self, token: &str) {
            self.comma();
            self.buf.push_str(token);
        }

        fn write_escaped(&mut self, s: &str) {
            self.buf.push('"');
            for c in s.chars() {
                match c {
                    '"' => self.buf.push_str("\\\""),
                    '\\' => self.buf.push_str("\\\\"),
                    '\n' => self.buf.push_str("\\n"),
                    '\r' => self.buf.push_str("\\r"),
                    '\t' => self.buf.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        self.buf.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => self.buf.push(c),
                }
            }
            self.buf.push('"');
        }
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_into(&self, out: &mut json::JsonWriter) {
                out.raw(&self.to_string());
            }
        }
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_into(&self, out: &mut json::JsonWriter) {
                if self.is_finite() {
                    out.raw(&self.to_string());
                } else {
                    out.raw("null");
                }
            }
        }
    )*};
}

impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize_into(&self, out: &mut json::JsonWriter) {
        out.raw(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize_into(&self, out: &mut json::JsonWriter) {
        out.string(self);
    }
}

impl Serialize for String {
    fn serialize_into(&self, out: &mut json::JsonWriter) {
        out.string(self);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_into(&self, out: &mut json::JsonWriter) {
        out.begin_array();
        for item in self {
            out.element(item);
        }
        out.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_into(&self, out: &mut json::JsonWriter) {
        self.as_slice().serialize_into(out);
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn serialize_into(&self, out: &mut json::JsonWriter) {
        self.as_ref().serialize_into(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_into(&self, out: &mut json::JsonWriter) {
        self.as_slice().serialize_into(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_into(&self, out: &mut json::JsonWriter) {
        (**self).serialize_into(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_into(&self, out: &mut json::JsonWriter) {
        match self {
            Some(v) => v.serialize_into(out),
            None => out.raw("null"),
        }
    }
}

impl Serialize for std::time::Duration {
    fn serialize_into(&self, out: &mut json::JsonWriter) {
        out.begin_object();
        out.field("secs", &self.as_secs());
        out.field("nanos", &self.subsec_nanos());
        out.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe {
        a: u64,
        b: Vec<f64>,
        c: String,
    }

    impl Serialize for Probe {
        fn serialize_into(&self, out: &mut json::JsonWriter) {
            out.begin_object();
            out.field("a", &self.a);
            out.field("b", &self.b);
            out.field("c", &self.c);
            out.end_object();
        }
    }

    #[test]
    fn nested_json_shape() {
        let p = Probe {
            a: 7,
            b: vec![0.5, 1.0],
            c: "x\"y".into(),
        };
        assert_eq!(p.to_json(), r#"{"a":7,"b":[0.5,1],"c":"x\"y"}"#);
    }

    #[test]
    fn duration_serializes_as_object() {
        let d = std::time::Duration::from_millis(1500);
        assert_eq!(d.to_json(), r#"{"secs":1,"nanos":500000000}"#);
    }

    #[test]
    fn scalars() {
        assert_eq!(true.to_json(), "true");
        assert_eq!(1.25f64.to_json(), "1.25");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(Option::<u32>::None.to_json(), "null");
    }
}
