//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! miniature property-testing harness covering the DSL subset its test
//! suites use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * range strategies (`0.0f64..1.0`, `2usize..=10`, …), [`arbitrary::any`],
//!   [`strategy::Just`], tuples of strategies, `prop::collection::vec`,
//!   [`strategy::Strategy::prop_map`], and
//!   [`strategy::Strategy::prop_flat_map`].
//!
//! Differences from the real crate: inputs are sampled from a
//! deterministic RNG seeded by the test name (no persisted failure
//! corpus), and there is **no shrinking** — a failing case panics with the
//! sampled inputs left to the assertion message. That trades minimal
//! counterexamples for an offline, dependency-free build; the property
//! coverage itself (random cases per property) is preserved.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Chains a dependent strategy: `f` builds the second-stage
        /// strategy from each first-stage value (e.g. a dimension drawn
        /// first, then vectors of that length).
        fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// A strategy that always yields a clone of one fixed value.
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
        type Value = O::Value;

        fn sample(&self, rng: &mut TestRng) -> O::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Strategy for the full value range of a type (see [`crate::arbitrary::any`]).
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng as _;
                    rng.rng_mut().random()
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);
}

pub mod arbitrary {
    //! The [`any`] entry point.

    use crate::strategy::Any;

    /// A strategy covering the whole value range of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy,
    {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification: a fixed size or a (half-open or inclusive)
    /// range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating a `Vec` of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Configuration and the deterministic test RNG.

    use rand::rngs::StdRng;
    use rand::{RngCore, SampleRange, SeedableRng};

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The deterministic RNG driving all strategies of one property.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Creates an RNG seeded from the test's name, so every run of the
        /// suite samples the same cases (there is no failure persistence).
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(seed))
        }

        /// Draws from a range (used by the range strategies).
        pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            use rand::Rng as _;
            self.0.random_range(range)
        }

        /// The underlying RNG (used by `any`).
        pub fn rng_mut(&mut self) -> &mut StdRng {
            &mut self.0
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Defines property tests over sampled inputs.
///
/// Supported form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(0.0f64..1.0, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`] — expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pname:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let ($($pname,)+) = (
                    $($crate::strategy::Strategy::sample(&($strat), &mut __rng),)+
                );
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! Everything a property-test file needs, re-exported flat.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec` and friends).
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 1usize..=8, v in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!((1..=8).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|c| (0.0..1.0).contains(c)));
        }

        #[test]
        fn tuples_and_map(
            (a, b) in (0u32..10, 0u32..10),
            s in (0usize..4).prop_map(|n| "x".repeat(n)),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(s.len() < 4, true);
            prop_assert_ne!(s.len(), 99);
        }

        #[test]
        fn any_covers_bool_and_ints(flag in any::<bool>(), word in any::<u64>()) {
            let _ = flag;
            let _ = word;
        }

        #[test]
        fn just_yields_its_value(k in Just(7usize), s in Just("fixed")) {
            prop_assert_eq!(k, 7);
            prop_assert_eq!(s, "fixed");
        }

        #[test]
        fn flat_map_chains_dependent_strategies(
            v in (1usize..=5).prop_flat_map(|n| prop::collection::vec(0.0f64..1.0, n)),
        ) {
            prop_assert!((1..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|c| (0.0..1.0).contains(c)));
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0.0f64..1.0, 3);
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
