//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Bytes`] subset the workspace uses: an immutable,
//! cheaply-cloneable byte buffer. Static slices are stored by reference
//! (no allocation); owned data is reference-counted, so cloning a page out
//! of the simulated disk store is a refcount bump exactly as with the real
//! crate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable byte buffer that is cheap to clone.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Copies a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        let c = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(&a[..], b"abc");
    }

    #[test]
    fn clone_is_shallow_for_shared_data() {
        let a = Bytes::from(vec![1u8; 64]);
        let b = a.clone();
        assert_eq!(a, b);
    }
}
