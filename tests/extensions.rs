//! Integration tests of the beyond-the-paper extensions: throughput mode,
//! striped declustering, persistence, caching, incremental browsing and
//! concurrency.

use std::sync::Arc;

use parsim::decluster::quantile::median_splits;
use parsim::decluster::StripedNearOptimal;
use parsim::index::knn::brute_force_knn;
use parsim::parallel::throughput::run_batch;
use parsim::parallel::DeclusteredXTree;
use parsim::prelude::*;

/// The striped declusterer preserves exactness and engages all
/// `colors × stripe` disks.
#[test]
fn striped_engine_is_exact_and_uses_all_disks() {
    let dim = 7; // 8 colors
    let n = 8_000;
    let data = UniformGenerator::new(dim).generate(n, 31);
    let items: Vec<(Point, u64)> = data
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();
    let config = EngineConfig::paper_defaults(dim);
    let striped = StripedNearOptimal::new(median_splits(&data).unwrap(), 3).unwrap();
    assert_eq!(striped.disks(), 24);
    let engine = DeclusteredXTree::build(&data, Arc::new(striped), config).unwrap();
    assert_eq!(engine.disks(), 24);

    let queries = UniformGenerator::new(dim).generate(8, 32);
    let mut touched = vec![0u64; 24];
    for q in &queries {
        let (got, cost) = engine.knn(q, 10).unwrap();
        let want = brute_force_knn(&items, q, 10);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist - w.dist).abs() < 1e-12);
        }
        for (t, r) in touched.iter_mut().zip(&cost.per_disk_reads) {
            *t += r;
        }
    }
    assert!(
        touched.iter().filter(|&&t| t > 0).count() >= 20,
        "disk usage: {touched:?}"
    );
}

/// Striping improves batch throughput over the plain coloring given the
/// extra disks — in the high-dimensional regime, where each bucket holds
/// many pages and a query touches most buckets anyway. (In low dimensions
/// thinner per-disk point sets inflate the total page count and eat the
/// gain, the same boundary effect that hurts item round robin.)
#[test]
fn striping_scales_throughput_past_the_color_limit() {
    let dim = 15; // 16 colors
    let data = UniformGenerator::new(dim).generate(20_000, 33);
    let queries = UniformGenerator::new(dim).generate(12, 34);
    let config = EngineConfig::paper_defaults(dim);

    let plain = DeclusteredXTree::build_near_optimal(&data, 16, config).unwrap();
    let striped = StripedNearOptimal::new(median_splits(&data).unwrap(), 2).unwrap();
    let wide = DeclusteredXTree::build(&data, Arc::new(striped), config).unwrap();
    assert_eq!(wide.disks(), 32);

    let plain_qps = run_batch(&plain, &queries, 10).unwrap().throughput_qps;
    let wide_qps = run_batch(&wide, &queries, 10).unwrap().throughput_qps;
    assert!(
        wide_qps > 1.4 * plain_qps,
        "16 disks: {plain_qps:.2} q/s, 32 disks striped: {wide_qps:.2} q/s"
    );
}

/// Persist → load across the engine boundary: a tree built by the engine's
/// bulk path round-trips through disk pages.
#[test]
fn persistence_round_trip_through_public_api() {
    let dim = 9;
    let data = UniformGenerator::new(dim).generate(3_000, 35);
    let items: Vec<(Point, u64)> = data
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();
    let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
    let tree = SpatialTree::bulk_load(params, items.clone()).unwrap();

    let disk = Arc::new(SimDisk::new(0));
    let handle = tree.persist(&disk).unwrap();
    let loaded = SpatialTree::load(&disk, handle).unwrap();
    loaded.validate();

    let q = UniformGenerator::new(dim).generate(1, 36).pop().unwrap();
    let want = brute_force_knn(&items, &q, 7);
    let got = loaded.knn(&q, 7, KnnAlgorithm::Hs);
    for (g, w) in got.iter().zip(want.iter()) {
        assert!((g.dist - w.dist).abs() < 1e-12);
    }
}

/// A failing disk surfaces a clean error through the persistence loader.
#[test]
fn disk_failure_surfaces_cleanly() {
    let dim = 5;
    let data: Vec<(Point, u64)> = UniformGenerator::new(dim)
        .generate(1_000, 37)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u64))
        .collect();
    let params = TreeParams::for_dim(dim, TreeVariant::RStar).unwrap();
    let tree = SpatialTree::bulk_load(params, data).unwrap();
    let disk = Arc::new(SimDisk::new(0));
    let handle = tree.persist(&disk).unwrap();

    disk.fail_after_reads(5);
    match SpatialTree::load(&disk, handle) {
        Err(parsim::index::PersistError::Storage(msg)) => {
            assert!(msg.contains("failure"), "unexpected message: {msg}");
        }
        Err(other) => panic!("expected a storage failure, got {other}"),
        Ok(_) => panic!("expected a storage failure, got a loaded tree"),
    }
    disk.heal();
    assert!(SpatialTree::load(&disk, handle).is_ok());
}

/// Concurrent queries from many threads return exact results (the engines
/// take `&self`; accounting scopes are per-caller and must not be shared
/// across threads, so only results are checked here).
#[test]
fn concurrent_queries_are_exact() {
    let dim = 8;
    let n = 5_000;
    let data = UniformGenerator::new(dim).generate(n, 38);
    let items: Vec<(Point, u64)> = data
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();
    let config = EngineConfig::paper_defaults(dim);
    let engine = Arc::new(DeclusteredXTree::build_near_optimal(&data, 8, config).unwrap());
    let items = Arc::new(items);

    let mut handles = Vec::new();
    for t in 0..8u64 {
        let engine = Arc::clone(&engine);
        let items = Arc::clone(&items);
        handles.push(std::thread::spawn(move || {
            for q in UniformGenerator::new(dim).generate(10, 100 + t) {
                let (got, _) = engine.knn(&q, 5).unwrap();
                let want = brute_force_knn(&items, &q, 5);
                for (g, w) in got.iter().zip(want.iter()) {
                    assert!((g.dist - w.dist).abs() < 1e-12);
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("query thread panicked");
    }
}

/// The caching sink composes with the declustering sink conceptually: a
/// big enough cache absorbs repeats while the first pass still charges.
#[test]
fn caching_composes_with_accounting() {
    use parsim::index::DiskSink;
    let dim = 6;
    let data: Vec<(Point, u64)> = UniformGenerator::new(dim)
        .generate(4_000, 39)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u64))
        .collect();
    let disk = Arc::new(SimDisk::new(0));
    let cache = Arc::new(CachingSink::new(
        Arc::new(DiskSink(Arc::clone(&disk))),
        50_000,
    ));
    let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
    let tree = SpatialTree::bulk_load(params, data)
        .unwrap()
        .with_sink(cache.clone() as Arc<dyn parsim::index::NodeSink>);

    let queries = UniformGenerator::new(dim).generate(10, 40);
    for q in &queries {
        tree.knn(q, 10, KnnAlgorithm::Rkv);
    }
    let first_pass = disk.read_count();
    assert!(first_pass > 0);
    for q in &queries {
        tree.knn(q, 10, KnnAlgorithm::Rkv);
    }
    assert_eq!(disk.read_count(), first_pass, "second pass must be cached");
    assert!(cache.hit_rate() > 0.4);
}
