//! Integration tests of the paper's formal guarantees, exercised through
//! the public API across crates.

use parsim::decluster::near_optimal::{col, colors_required};
use parsim::geometry::quadrant::{all_neighbors, direct_neighbors, indirect_neighbors};
use parsim::prelude::*;

/// Definition 4 / Lemma 5: `col` is near-optimal — verified exhaustively
/// through the graph machinery for every dimension up to 14.
#[test]
fn near_optimal_guarantee_holds_through_dim_14() {
    for d in 1..=14 {
        let graph = DiskAssignmentGraph::new(d);
        let method = NearOptimal::with_optimal_disks(d).unwrap();
        assert!(graph.verify(&method).is_ok(), "d = {d}");
    }
}

/// Lemma 1: none of the classical methods is near-optimal in any dimension
/// ≥ 3 at realistic disk counts.
#[test]
fn classical_methods_fail_everywhere() {
    for d in 3..=10 {
        let graph = DiskAssignmentGraph::new(d);
        for n in [4usize, 8, 16] {
            assert!(
                graph.verify(&DiskModulo::new(n).unwrap()).is_err(),
                "DM d={d} n={n}"
            );
            assert!(
                graph.verify(&FxXor::new(n).unwrap()).is_err(),
                "FX d={d} n={n}"
            );
            // With n >= 2^d every bucket can get its own disk, so any
            // injective mapping (like Hilbert's) is trivially proper —
            // only the realistic n < 2^d cases are counterexamples.
            if n < (1usize << d) {
                assert!(
                    graph.verify(&HilbertDecluster::new(d, n).unwrap()).is_err(),
                    "HI d={d} n={n}"
                );
            }
        }
    }
}

/// The lower-bound half of the staircase: fewer disks than
/// `colors_required(d)` can never be near-optimal, for any method — shown
/// by pigeonhole on the (d+1)-clique of a vertex and its direct neighbors
/// plus the exhaustive search for d ≤ 4.
#[test]
fn no_method_can_beat_the_staircase_small_dims() {
    for d in 2..=4 {
        let graph = DiskAssignmentGraph::new(d);
        let required = colors_required(d) as usize;
        assert!(!graph.colorable_with(required - 1), "d = {d}");
    }
}

/// The folded variants stay proper on direct neighbors at n = C/2 for most
/// edges, and collapse gracefully down to a single disk.
#[test]
fn folding_degrades_gracefully() {
    let d = 10;
    let full = colors_required(d) as usize; // 16
    let mut prev_violations = 0u64;
    for n in [full, full / 2, full / 4, 2, 1] {
        let method = NearOptimal::new(d, n).unwrap();
        let graph = DiskAssignmentGraph::new(d);
        let (direct, _) = graph.count_violations(&method);
        if n == full {
            assert_eq!(direct, 0);
        }
        // Halving the disks can only increase direct collisions.
        assert!(
            direct >= prev_violations,
            "n={n}: {direct} < {prev_violations}"
        );
        prev_violations = direct;
        // The assignment remains total and in range.
        for b in 0..(1u64 << d) {
            assert!(method.disk_of_bucket(b, d) < n.max(1));
        }
    }
}

/// Load balance on uniform data: the near-optimal method fills all disks
/// evenly because every color class contains the same number of quadrants
/// (for d+1 a power of two) or nearly so.
#[test]
fn color_classes_are_balanced() {
    for d in [7usize, 15] {
        let c = colors_required(d);
        let mut counts = vec![0u64; c as usize];
        for b in 0..(1u64 << d) {
            counts[col(b, d) as usize] += 1;
        }
        let expect = (1u64 << d) / c as u64;
        for (color, &count) in counts.iter().enumerate() {
            assert_eq!(count, expect, "d={d} color={color}");
        }
    }
}

/// Neighborhood structure consistency between the geometry and decluster
/// crates: the graph's edges are exactly the 1- and 2-bit Hamming pairs.
#[test]
fn neighborhoods_match_graph_edge_count() {
    for d in 2..=10 {
        let graph = DiskAssignmentGraph::new(d);
        let mut edges = 0u64;
        for b in 0..(1u64 << d) {
            edges += all_neighbors(b, d).filter(|&c| c > b).count() as u64;
            // Cross-check the split into direct and indirect parts.
            assert_eq!(direct_neighbors(b, d).count(), d);
            assert_eq!(indirect_neighbors(b, d).count(), d * (d - 1) / 2);
        }
        assert_eq!(edges, graph.edge_count(), "d = {d}");
    }
}

/// The quadrant-level Hilbert declustering must agree with the raw curve.
#[test]
fn hilbert_declustering_matches_curve() {
    use parsim::hilbert::HilbertCurve;
    let d = 6;
    let n = 8;
    let method = HilbertDecluster::new(d, n).unwrap();
    let curve = HilbertCurve::new(d, 1).unwrap();
    for b in 0..(1u64 << d) {
        let coords: Vec<u64> = (0..d).map(|i| (b >> i) & 1).collect();
        let expect = (curve.encode(&coords) % n as u128) as usize;
        assert_eq!(method.disk_of_bucket(b, d), expect);
    }
}
