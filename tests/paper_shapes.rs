//! Integration tests asserting the qualitative *shapes* of the paper's
//! evaluation — small-scale versions of the figures that must hold on
//! every run (the full-scale versions live in the `figures` binary).

use std::sync::Arc;

use parsim::decluster::quantile::median_splits;
use parsim::parallel::metrics::run_declustered_workload;
use parsim::parallel::DeclusteredXTree;
use parsim::prelude::*;

fn avg_max_pages(engine: &DeclusteredXTree, queries: &[Point], k: usize) -> f64 {
    run_declustered_workload(engine, queries, k)
        .unwrap()
        .avg_max_reads
}

/// Figure 1's shape: sequential NN search cost grows steeply with the
/// dimension.
#[test]
fn sequential_cost_degenerates_with_dimension() {
    let n = 8_000;
    let mut costs = Vec::new();
    for dim in [4usize, 8, 12] {
        let data = UniformGenerator::new(dim).generate(n, 1);
        let config = EngineConfig::paper_defaults(dim);
        let engine = DeclusteredXTree::build_near_optimal(&data, 1, config).unwrap();
        let queries = UniformGenerator::new(dim).generate(5, 2);
        costs.push(avg_max_pages(&engine, &queries, 10));
    }
    assert!(costs[1] > 2.0 * costs[0], "{costs:?}");
    assert!(costs[2] > 2.0 * costs[1], "{costs:?}");
}

/// Figures 13/14's shape: on clustered (Fourier) data the near-optimal
/// declustering clearly beats Hilbert, which beats FX.
#[test]
fn method_ranking_on_fourier_data() {
    let dim = 12;
    let n = 20_000;
    let gen = FourierGenerator::new(dim);
    let data = gen.generate(n, 7);
    let queries = QueryWorkload::DataLike { data_count: n }.generate(&gen, 8, 7);
    let config = EngineConfig::paper_defaults(dim);

    let build = |m: Arc<dyn BucketDecluster>| {
        DeclusteredXTree::build_bucket(&data, m, median_splits(&data).unwrap(), config).unwrap()
    };
    let ours = build(Arc::new(NearOptimal::new(dim, 16).unwrap()));
    let hil = build(Arc::new(HilbertDecluster::new(dim, 16).unwrap()));
    let fx = build(Arc::new(FxXor::new(16).unwrap()));

    let ours_cost = avg_max_pages(&ours, &queries, 10);
    let hil_cost = avg_max_pages(&hil, &queries, 10);
    let fx_cost = avg_max_pages(&fx, &queries, 10);

    assert!(
        ours_cost < hil_cost,
        "near-optimal {ours_cost} !< hilbert {hil_cost}"
    );
    assert!(hil_cost < fx_cost, "hilbert {hil_cost} !< fx {fx_cost}");
    // The paper's headline: a substantial factor over Hilbert.
    assert!(
        hil_cost / ours_cost > 1.3,
        "improvement only {:.2}",
        hil_cost / ours_cost
    );
}

/// Figure 15's shape: scale-up stays bounded when disks and data grow
/// proportionally.
#[test]
fn scale_up_is_nearly_constant() {
    let dim = 12;
    let gen = FourierGenerator::new(dim);
    let config = EngineConfig::paper_defaults(dim);
    let mut times = Vec::new();
    for (disks, n) in [(4usize, 10_000usize), (16, 40_000)] {
        let data = gen.generate(n, 3);
        let queries = QueryWorkload::DataLike { data_count: n }.generate(&gen, 6, 3);
        let engine = DeclusteredXTree::build_near_optimal(&data, disks, config).unwrap();
        times.push(avg_max_pages(&engine, &queries, 10));
    }
    let ratio = times[1] / times[0];
    assert!(
        (0.4..2.5).contains(&ratio),
        "4x problem growth changed cost by {ratio}: {times:?}"
    );
}

/// Figure 16's shape: recursive declustering rescues correlated data.
#[test]
fn recursive_declustering_rescues_correlated_data() {
    use parsim::decluster::recursive::RecursiveConfig;

    let dim = 10;
    let n = 10_000;
    let gen = CorrelatedGenerator::new(dim, 0.05);
    let data = gen.generate(n, 5);
    let queries = QueryWorkload::DataLike { data_count: n }.generate(&gen, 8, 5);
    let config = EngineConfig::paper_defaults(dim);

    let flat_method = BucketBased::new(
        NearOptimal::new(dim, 16).unwrap(),
        median_splits(&data).unwrap(),
    );
    let flat = DeclusteredXTree::build(&data, Arc::new(flat_method), config).unwrap();
    let recursive = RecursiveDeclusterer::build(&data, 16, RecursiveConfig::default()).unwrap();
    assert!(recursive.levels() > 1, "refinement must trigger");
    let rec = DeclusteredXTree::build(&data, Arc::new(recursive), config).unwrap();

    let flat_cost = avg_max_pages(&flat, &queries, 1);
    let rec_cost = avg_max_pages(&rec, &queries, 1);
    assert!(
        rec_cost < 0.7 * flat_cost,
        "flat {flat_cost} vs recursive {rec_cost}"
    );
}

/// Figure 5's shape through the public API: surface concentration.
#[test]
fn surface_concentration_shape() {
    use parsim::geometry::highdim::surface_probability;
    assert!(surface_probability(2, 0.1) < 0.5);
    assert!(surface_probability(16, 0.1) > 0.97);
}

/// The shared-bound parallel search reads no more total pages than the
/// independent per-disk variant — the reason the engine defaults to it.
#[test]
fn shared_bound_beats_independent_search() {
    let dim = 10;
    let data = UniformGenerator::new(dim).generate(15_000, 11);
    let config = EngineConfig::paper_defaults(dim);
    let engine = ParallelKnnEngine::builder(dim)
        .config(config)
        .disks(8)
        .build(&data)
        .unwrap();
    let queries = UniformGenerator::new(dim).generate(10, 12);
    let mut shared = 0u64;
    let mut independent = 0u64;
    for q in &queries {
        let (_, c) = engine.knn(q, 10).unwrap();
        shared += c.total_reads;
        let (_, c) = engine.knn_independent(q, 10).unwrap();
        independent += c.total_reads;
    }
    assert!(
        shared <= independent,
        "shared {shared} > independent {independent}"
    );
}
