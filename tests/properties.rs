//! Property-based tests (proptest) over the core invariants, spanning
//! crates.

use proptest::prelude::*;

use parsim::decluster::near_optimal::{col, colors_required, fold_table};
use parsim::hilbert::{HilbertCurve, ZOrderCurve};
use parsim::index::knn::brute_force_knn;
use parsim::prelude::*;

fn arb_point(dim: usize) -> impl Strategy<Value = Point> {
    prop::collection::vec(0.0f64..1.0, dim).prop_map(Point::from_vec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 2 (distributivity) for arbitrary dimensions up to 63.
    #[test]
    fn col_is_distributive(dim in 1usize..=63, a in any::<u64>(), b in any::<u64>()) {
        let mask = if dim == 63 { (1u64 << 63) - 1 } else { (1u64 << dim) - 1 };
        let (a, b) = (a & mask, b & mask);
        prop_assert_eq!(col(a, dim) ^ col(b, dim), col(a ^ b, dim));
    }

    /// Lemmas 3 and 4: all direct and indirect neighbors of a random
    /// bucket receive different colors.
    #[test]
    fn col_separates_neighbors(dim in 2usize..=40, bucket in any::<u64>()) {
        let mask = (1u64 << dim) - 1;
        let b = bucket & mask;
        let c = col(b, dim);
        for i in 0..dim {
            prop_assert_ne!(c, col(b ^ (1 << i), dim));
            for j in (i + 1)..dim {
                prop_assert_ne!(c, col(b ^ (1 << i) ^ (1 << j), dim));
            }
        }
    }

    /// The color of any bucket is below the staircase bound.
    #[test]
    fn col_stays_below_staircase(dim in 1usize..=63, bucket in any::<u64>()) {
        let mask = if dim == 63 { (1u64 << 63) - 1 } else { (1u64 << dim) - 1 };
        prop_assert!(col(bucket & mask, dim) < colors_required(dim));
    }

    /// Folding always lands in range and is surjective onto 0..n.
    #[test]
    fn fold_table_total_and_surjective(exp in 1u32..=6, n_seed in any::<u16>()) {
        let c = 1u32 << exp;
        let n = (n_seed as usize % c as usize) + 1;
        let table = fold_table(c, n);
        prop_assert_eq!(table.len(), c as usize);
        let mut seen = vec![false; n];
        for &d in &table {
            prop_assert!((d as usize) < n);
            seen[d as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Hilbert and Z-order curves are bijections (round trip).
    #[test]
    fn curves_round_trip(dim in 1usize..=16, order_seed in 1u32..=4, idx in any::<u64>()) {
        let order = order_seed.min(128 / dim as u32).max(1);
        let h = HilbertCurve::new(dim, order).unwrap();
        let z = ZOrderCurve::new(dim, order).unwrap();
        let index = (idx as u128) % h.cell_count();
        prop_assert_eq!(h.encode(&h.decode(index)), index);
        prop_assert_eq!(z.encode(&z.decode(index)), index);
    }

    /// Consecutive Hilbert positions are face-adjacent grid cells.
    #[test]
    fn hilbert_adjacency(dim in 2usize..=10, order_seed in 1u32..=3, idx in any::<u64>()) {
        let order = order_seed.min(128 / dim as u32).max(1);
        let h = HilbertCurve::new(dim, order).unwrap();
        let index = (idx as u128) % (h.cell_count() - 1);
        let a = h.decode(index);
        let b = h.decode(index + 1);
        let l1: u64 = a.iter().zip(&b).map(|(&x, &y)| x.abs_diff(y)).sum();
        prop_assert_eq!(l1, 1);
    }

    /// MINDIST is a true lower bound: for random rectangles, queries and
    /// contained points, dist²(q, p) ≥ MINDIST²(q, R).
    #[test]
    fn mindist_lower_bounds(
        dim in 1usize..=8,
        qs in prop::collection::vec(0.0f64..1.0, 8),
        los in prop::collection::vec(0.0f64..0.5, 8),
        his in prop::collection::vec(0.5f64..1.0, 8),
        ts in prop::collection::vec(0.0f64..1.0, 8),
    ) {
        let q = Point::from_vec(qs[..dim].to_vec());
        let rect = HyperRect::new(los[..dim].to_vec(), his[..dim].to_vec()).unwrap();
        // A point inside the rectangle by interpolation.
        let inside = Point::from_vec(
            (0..dim)
                .map(|i| rect.lo(i) + ts[i] * (rect.hi(i) - rect.lo(i)))
                .collect(),
        );
        prop_assert!(rect.contains_point(&inside));
        prop_assert!(q.dist2(&inside) >= rect.min_dist2(&q) - 1e-12);
        // MINMAXDIST and MAXDIST bound it from above.
        prop_assert!(rect.min_max_dist2(&q) <= rect.max_dist2(&q) + 1e-12);
    }

    /// The Euclidean metric satisfies the triangle inequality.
    #[test]
    fn triangle_inequality(
        a in prop::collection::vec(0.0f64..1.0, 6),
        b in prop::collection::vec(0.0f64..1.0, 6),
        c in prop::collection::vec(0.0f64..1.0, 6),
    ) {
        let (a, b, c) = (Point::from_vec(a), Point::from_vec(b), Point::from_vec(c));
        prop_assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c) + 1e-12);
    }
}

proptest! {
    // Tree-building cases are more expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The index answers k-NN exactly on arbitrary point sets (both
    /// algorithms, both variants).
    #[test]
    fn index_knn_matches_brute_force(
        pts in prop::collection::vec(arb_point(5), 30..300),
        q in arb_point(5),
        k in 1usize..=12,
    ) {
        let items: Vec<(Point, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        let want = brute_force_knn(&items, &q, k);
        for variant in [TreeVariant::RStar, TreeVariant::xtree_default()] {
            let params = TreeParams::for_dim(5, variant)
                .unwrap()
                .with_capacities(6, 6)
                .unwrap();
            let mut tree = SpatialTree::new(params);
            for (p, id) in &items {
                tree.insert(p.clone(), *id).unwrap();
            }
            tree.validate();
            for algo in [KnnAlgorithm::Rkv, KnnAlgorithm::Hs] {
                let got = tree.knn(&q, k, algo);
                prop_assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(want.iter()) {
                    prop_assert!((g.dist - w.dist).abs() < 1e-12);
                }
            }
        }
    }

    /// Random deletes keep the tree valid and consistent with a shadow set.
    #[test]
    fn random_deletes_keep_tree_valid(
        pts in prop::collection::vec(arb_point(4), 50..200),
        del_mask in prop::collection::vec(any::<bool>(), 200),
    ) {
        let params = TreeParams::for_dim(4, TreeVariant::xtree_default())
            .unwrap()
            .with_capacities(6, 6)
            .unwrap();
        let mut tree = SpatialTree::new(params);
        for (i, p) in pts.iter().enumerate() {
            tree.insert(p.clone(), i as u64).unwrap();
        }
        let mut remaining = pts.len();
        for (i, p) in pts.iter().enumerate() {
            if del_mask[i % del_mask.len()] {
                tree.delete(p, i as u64).unwrap();
                remaining -= 1;
            }
        }
        prop_assert_eq!(tree.len(), remaining);
        tree.validate();
    }

    /// Declustering is total: every point goes to a disk in range, for all
    /// methods and random disk counts.
    #[test]
    fn declustering_is_total(
        pts in prop::collection::vec(arb_point(6), 20..100),
        disks in 1usize..=16,
    ) {
        let splitter = QuadrantSplitter::midpoint(6).unwrap();
        let methods: Vec<Box<dyn Declusterer>> = vec![
            Box::new(RoundRobin::new(disks).unwrap()),
            Box::new(BucketBased::new(DiskModulo::new(disks).unwrap(), splitter.clone())),
            Box::new(BucketBased::new(FxXor::new(disks).unwrap(), splitter.clone())),
            Box::new(BucketBased::new(
                HilbertDecluster::new(6, disks).unwrap(),
                splitter.clone(),
            )),
            Box::new(BucketBased::new(
                NearOptimal::new(6, disks.min(8)).unwrap(),
                splitter,
            )),
        ];
        for m in &methods {
            for (i, p) in pts.iter().enumerate() {
                let d = m.assign(i as u64, p);
                prop_assert!(d < m.disks(), "{} assigned disk {d}", m.name());
                // Deterministic.
                prop_assert_eq!(d, m.assign(i as u64, p));
            }
        }
    }
}
