//! End-to-end integration: generators → declustering → disks → index →
//! parallel query, verified against brute force.

use parsim::index::knn::brute_force_knn;
use parsim::parallel::DeclusteredXTree;
use parsim::prelude::*;

fn as_items(pts: &[Point]) -> Vec<(Point, u64)> {
    pts.iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect()
}

/// Both engines must return exactly the brute-force answer on every data
/// distribution the workspace can generate.
#[test]
fn every_generator_yields_exact_knn() {
    let dim = 10;
    let n = 2_000;
    let generators: Vec<Box<dyn DataGenerator>> = vec![
        Box::new(UniformGenerator::new(dim)),
        Box::new(ClusteredGenerator::new(dim, 4, 0.05)),
        Box::new(CorrelatedGenerator::new(dim, 0.05)),
        Box::new(FourierGenerator::new(dim)),
        Box::new(TextDescriptorGenerator::new(dim)),
    ];
    for gen in &generators {
        let data = gen.generate(n, 77);
        let items = as_items(&data);
        let queries = QueryWorkload::DataLike { data_count: n }.generate(gen.as_ref(), 5, 77);
        let config = EngineConfig::paper_defaults(dim);

        let forest = ParallelKnnEngine::builder(dim)
            .config(config)
            .disks(8)
            .build(&data)
            .unwrap();
        let paged = DeclusteredXTree::build_near_optimal(&data, 8, config).unwrap();

        for q in &queries {
            let want = brute_force_knn(&items, q, 10);
            let (got_forest, _) = forest.knn(q, 10).unwrap();
            let (got_paged, _) = paged.knn(q, 10).unwrap();
            for (g, w) in got_forest.iter().zip(want.iter()) {
                assert!(
                    (g.dist - w.dist).abs() < 1e-12,
                    "{}: forest mismatch",
                    gen.name()
                );
            }
            for (g, w) in got_paged.iter().zip(want.iter()) {
                assert!(
                    (g.dist - w.dist).abs() < 1e-12,
                    "{}: paged mismatch",
                    gen.name()
                );
            }
        }
    }
}

/// Every declustering method must produce a total assignment and exact
/// query answers — methods may only differ in cost, never in results.
#[test]
fn all_methods_agree_on_results() {
    use parsim::decluster::quantile::median_splits;
    use std::sync::Arc;

    let dim = 8;
    let n = 3_000;
    let data = UniformGenerator::new(dim).generate(n, 5);
    let items = as_items(&data);
    let config = EngineConfig::paper_defaults(dim);
    let q = UniformGenerator::new(dim).generate(1, 6).pop().unwrap();
    let want = brute_force_knn(&items, &q, 10);

    let methods: Vec<Arc<dyn BucketDecluster>> = vec![
        Arc::new(DiskModulo::new(8).unwrap()),
        Arc::new(FxXor::new(8).unwrap()),
        Arc::new(HilbertDecluster::new(dim, 8).unwrap()),
        Arc::new(NearOptimal::new(dim, 8).unwrap()),
    ];
    for m in methods {
        let splitter = median_splits(&data).unwrap();
        let engine = DeclusteredXTree::build_bucket(&data, m, splitter, config).unwrap();
        let (got, cost) = engine.knn(&q, 10).unwrap();
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist - w.dist).abs() < 1e-12);
        }
        assert_eq!(cost.per_disk_reads.len(), 8);
        assert_eq!(cost.per_disk_reads.iter().sum::<u64>(), cost.total_reads);
    }
}

/// The simulated disk accounting must be exact: the pages the engine
/// reports equal the deltas observed on the raw disk counters.
#[test]
fn cost_accounting_is_exact() {
    let dim = 6;
    let data = UniformGenerator::new(dim).generate(2_000, 9);
    let config = EngineConfig::paper_defaults(dim);
    let engine = ParallelKnnEngine::builder(dim)
        .config(config)
        .disks(4)
        .build(&data)
        .unwrap();

    let before: Vec<u64> = engine.array().iter().map(|d| d.read_count()).collect();
    let q = UniformGenerator::new(dim).generate(1, 10).pop().unwrap();
    let (_, cost) = engine.knn(&q, 5).unwrap();
    let after: Vec<u64> = engine.array().iter().map(|d| d.read_count()).collect();

    let deltas: Vec<u64> = after
        .iter()
        .zip(before.iter())
        .map(|(a, b)| a - b)
        .collect();
    assert_eq!(deltas, cost.per_disk_reads);
}

/// Range and window queries work through the full stack.
#[test]
fn range_queries_through_the_stack() {
    let dim = 5;
    let data = UniformGenerator::new(dim).generate(4_000, 12);
    let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
    let tree = SpatialTree::bulk_load(params, as_items(&data)).unwrap();
    let center = Point::new(vec![0.5; dim]).unwrap();
    let hits = tree.range_query(&center, 0.3);
    let expected = data.iter().filter(|p| p.dist(&center) <= 0.3).count();
    assert_eq!(hits.len(), expected);

    let window = HyperRect::new(vec![0.25; dim], vec![0.75; dim]).unwrap();
    let inside = tree.window_query(&window);
    let expected = data.iter().filter(|p| window.contains_point(p)).count();
    assert_eq!(inside.len(), expected);
}

/// Speed-up must increase monotonically (within tolerance) as disks are
/// added, and never exceed the disk count.
#[test]
fn speedup_is_monotone_and_bounded() {
    use parsim::parallel::metrics::{run_declustered_workload, speedup};

    let dim = 12;
    let n = 20_000;
    let data = UniformGenerator::new(dim).generate(n, 3);
    let queries = UniformGenerator::new(dim).generate(8, 4);
    let config = EngineConfig::paper_defaults(dim);
    let baseline = DeclusteredXTree::build_near_optimal(&data, 1, config).unwrap();
    let seq = run_declustered_workload(&baseline, &queries, 10).unwrap();

    let mut prev = 0.0;
    for disks in [1usize, 2, 4, 8, 16] {
        let engine = DeclusteredXTree::build_near_optimal(&data, disks, config).unwrap();
        let cost = run_declustered_workload(&engine, &queries, 10).unwrap();
        let s = speedup(&seq, &cost);
        assert!(s <= disks as f64 + 1e-9, "disks={disks}: speed-up {s}");
        assert!(
            s >= prev * 0.95,
            "disks={disks}: speed-up fell from {prev} to {s}"
        );
        prev = s;
    }
    assert!(prev > 4.0, "16 disks should speed up by > 4x, got {prev}");
}
