//! Integration tests of the dynamic side of the system: insertions,
//! deletions, drift detection and reorganization ("our parallel
//! nearest-neighbor search is completely dynamical", Section 4.3).

use parsim::decluster::quantile::{median_splits, AdaptiveQuantile};
use parsim::index::knn::brute_force_knn;
use parsim::prelude::*;

/// Long random insert/delete sequences keep the forest engine exact.
#[test]
fn insert_delete_churn_stays_exact() {
    let dim = 6;
    let initial = UniformGenerator::new(dim).generate(1_000, 1);
    let stream = UniformGenerator::new(dim).generate(600, 2);
    let config = EngineConfig::paper_defaults(dim);
    let engine = ParallelKnnEngine::builder(dim)
        .config(config)
        .disks(8)
        .ingest(IngestConfig::new(10_000))
        .build(&initial)
        .unwrap();

    // Shadow copy for brute force.
    let mut shadow: Vec<(Point, u64)> = initial
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();

    let mut inserted: Vec<(Point, u64)> = Vec::new();
    for (i, p) in stream.iter().enumerate() {
        if i % 3 == 2 {
            // Delete a previously inserted point.
            if let Some((_, id)) = inserted.pop() {
                engine.remove(id).unwrap();
                shadow.retain(|(_, sid)| *sid != id);
            }
        } else {
            let id = engine.insert(p.clone()).unwrap();
            inserted.push((p.clone(), id));
            shadow.push((p.clone(), id));
        }
    }
    assert_eq!(engine.len(), shadow.len());

    for q in UniformGenerator::new(dim).generate(10, 3) {
        let want = brute_force_knn(&shadow, &q, 5);
        let (got, _) = engine.knn(&q, 5).unwrap();
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist - w.dist).abs() < 1e-12);
        }
    }
}

/// Per-disk trees stay structurally valid under churn.
#[test]
fn trees_stay_valid_under_churn() {
    let dim = 5;
    let initial = UniformGenerator::new(dim).generate(800, 4);
    let config = EngineConfig::paper_defaults(dim);
    let engine = ParallelKnnEngine::builder(dim)
        .config(config)
        .disks(4)
        .ingest(IngestConfig::new(10_000))
        .build(&initial)
        .unwrap();
    let stream = UniformGenerator::new(dim).generate(400, 5);
    let mut ids = Vec::new();
    for p in &stream {
        ids.push((p.clone(), engine.insert(p.clone()).unwrap()));
    }
    for (_, id) in ids.iter().take(200) {
        engine.remove(*id).unwrap();
    }
    engine.for_each_tree(|tree| tree.validate());
    assert_eq!(engine.len(), 800 + 400 - 200);
    // Flushing drains the delta into freshly bulk-loaded trees, which must
    // remain structurally valid and content-identical.
    engine.flush().unwrap();
    assert_eq!(engine.delta_size(), 0);
    engine.for_each_tree(|tree| tree.validate());
    assert_eq!(engine.len(), 800 + 400 - 200);
}

/// The adaptive quantile tracker fires exactly when the distribution
/// drifts, and reorganization restores balance.
#[test]
fn drift_detection_and_reorganization() {
    let dim = 8;
    let initial = UniformGenerator::new(dim).generate(4_000, 6);
    let config = EngineConfig::paper_defaults(dim);
    let engine = ParallelKnnEngine::builder(dim)
        .config(config)
        .disks(8)
        .ingest(IngestConfig::new(10_000))
        .build(&initial)
        .unwrap();

    let splitter = median_splits(&initial).unwrap();
    let mut tracker = AdaptiveQuantile::new(&splitter, 2.0);

    // Phase 1: more uniform data — no drift.
    let mut buffered: Vec<(Point, u64)> = Vec::new();
    for p in UniformGenerator::new(dim).generate(2_000, 7) {
        tracker.observe(&p);
        let id = engine.insert(p.clone()).unwrap();
        buffered.push((p, id));
    }
    assert!(!tracker.needs_reorganization());

    // Phase 2: a burst of clustered data in one corner — drift.
    let burst = ClusteredGenerator::new(dim, 1, 0.02)
        .in_single_quadrant()
        .generate(4_000, 8);
    for p in &burst {
        tracker.observe(p);
        let id = engine.insert(p.clone()).unwrap();
        buffered.push((p.clone(), id));
    }
    assert!(tracker.needs_reorganization());

    // Reorganize: loads even out relative to before. The "before" loads
    // project the buffered writes onto the disks the stale declustering
    // would have chosen for them.
    let mut before = engine.load_distribution();
    let stale = engine.declusterer();
    for (p, id) in &buffered {
        before[stale.assign(*id, p)] += 1;
    }
    let imbalance = |loads: &[usize]| -> f64 {
        let total: usize = loads.iter().sum();
        *loads.iter().max().unwrap() as f64 / (total as f64 / loads.len() as f64)
    };
    engine.reorganize().unwrap();
    let after = engine.load_distribution();
    assert_eq!(
        after.iter().sum::<usize>(),
        before.iter().sum::<usize>(),
        "reorganization must preserve the data"
    );
    assert!(
        imbalance(&after) <= imbalance(&before) + 1e-9,
        "before {before:?} after {after:?}"
    );
}

/// Duplicate vectors (identical multimedia objects) flow through the whole
/// stack.
#[test]
fn duplicates_are_preserved() {
    let dim = 4;
    let p = Point::new(vec![0.25; dim]).unwrap();
    let mut data = UniformGenerator::new(dim).generate(500, 9);
    for _ in 0..50 {
        data.push(p.clone());
    }
    let config = EngineConfig::paper_defaults(dim);
    let engine = ParallelKnnEngine::builder(dim)
        .config(config)
        .disks(4)
        .build(&data)
        .unwrap();
    let (res, _) = engine.knn(&p, 50).unwrap();
    assert_eq!(res.len(), 50);
    assert!(res.iter().all(|nb| nb.dist == 0.0));
}
